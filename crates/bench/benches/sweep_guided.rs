//! `sweep_guided` — exhaustive vs guided execution of the E16 constrained
//! design sweep, timed head-to-head. Not a Criterion bench: the two arms
//! are whole `run_query` invocations whose interesting outputs are DES
//! events executed and wall-clock, and the bench asserts the planner's
//! contract (identical verdict tables, identical winning row) before
//! timing anything. Writes `BENCH_sweep.json` at the workspace root
//! (override with `BENCH_SWEEP_OUT=...`).
//!
//! Run with `cargo bench --bench sweep_guided`; `--no-run` in CI just
//! compiles it, which keeps the guided API surface honest.

use std::fmt::Write as _;
use std::time::Instant;
use windtunnel::prelude::*;
use wt_wtql::{parse, run_query, ExecOptions, QueryOutcome};

const SAMPLES: usize = 5;

const QUERY: &str = "\
    EXPLORE availability, tco_usd_per_year \
    SWEEP replication IN [1, 2, 3, 5], repair_parallel IN [1, 4] \
    SUBJECT TO availability >= 0.99985, mean_rebuild_wait_s <= 60 \
    MINIMIZE tco_usd_per_year \
    OPTIONS prune = FALSE, replications = 10";

fn fixture() -> Scenario {
    let mut base = ScenarioBuilder::new("guided-bench")
        .racks(3)
        .nodes_per_rack(10)
        .objects(1_000)
        .object_gb(4.0)
        .horizon_years(0.25)
        .seed(16)
        .build();
    base.topology.node.ttf = Dist::weibull_mean(0.8, 40.0 * 86_400.0);
    base.repair.detection_delay_s = 5.0 * 86_400.0;
    base
}

fn run(guided: bool) -> QueryOutcome {
    let query = parse(QUERY).expect("parses");
    let mut opts = ExecOptions::from_query(&query);
    if guided {
        opts.guided = true;
        opts.screen = true;
        opts.rank = true;
        opts.early_stop = true;
        opts.sketch_abort = true;
    }
    let tunnel = WindTunnel::new();
    run_query(&query, &fixture(), &tunnel, &opts).expect("runs")
}

fn verdicts(out: &QueryOutcome) -> Vec<(String, bool, bool)> {
    out.rows
        .iter()
        .map(|r| (format!("{:?}", r.assignment), r.passes, r.pruned))
        .collect()
}

fn time_arm(guided: bool) -> (f64, f64) {
    let mut samples: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(run(guided));
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    (samples[0], samples[SAMPLES / 2])
}

fn main() {
    // Contract first: guided may only change how much work runs.
    let exhaustive = run(false);
    let guided = run(true);
    assert_eq!(
        verdicts(&exhaustive),
        verdicts(&guided),
        "guided execution changed a verdict"
    );
    assert_eq!(
        exhaustive.best_row().map(|r| r.assignment.clone()),
        guided.best_row().map(|r| r.assignment.clone()),
        "guided execution changed the winning row"
    );
    assert!(guided.screened > 0, "screens never fired on the fixture");

    let (ex_best, ex_median) = time_arm(false);
    let (g_best, g_median) = time_arm(true);

    let event_reduction =
        exhaustive.total_sim_events as f64 / guided.total_sim_events.max(1) as f64;
    let speedup = ex_best / g_best.max(1e-9);
    println!(
        "exhaustive: {} events, best {:.3}s | guided: {} events ({} screened, {} early-stopped), best {:.3}s",
        exhaustive.total_sim_events,
        ex_best,
        guided.total_sim_events,
        guided.screened,
        guided.early_stopped,
        g_best
    );
    println!("event reduction {event_reduction:.1}x, wall-clock speedup {speedup:.1}x");
    assert!(
        event_reduction >= 5.0,
        "guided execution must cut DES events at least 5x on the constrained sweep \
         (got {event_reduction:.1}x)"
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"sweep_guided\",\n");
    let _ = writeln!(json, "  \"samples\": {SAMPLES},");
    let _ = writeln!(
        json,
        "  \"grid\": {{\"points\": {}, \"replications\": 10}},",
        exhaustive.rows.len()
    );
    let _ = writeln!(
        json,
        "  \"exhaustive\": {{\"sim_events\": {}, \"wall_s_best\": {:.6}, \"wall_s_median\": {:.6}}},",
        exhaustive.total_sim_events, ex_best, ex_median
    );
    let _ = writeln!(
        json,
        "  \"guided\": {{\"sim_events\": {}, \"screened\": {}, \"early_stopped\": {}, \
         \"wall_s_best\": {:.6}, \"wall_s_median\": {:.6}}},",
        guided.total_sim_events, guided.screened, guided.early_stopped, g_best, g_median
    );
    let _ = writeln!(json, "  \"event_reduction\": {event_reduction:.2},");
    let _ = writeln!(json, "  \"wall_clock_speedup\": {speedup:.2},");
    json.push_str("  \"verdicts_identical\": true\n");
    json.push_str("}\n");

    let out = std::env::var("BENCH_SWEEP_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json").to_string()
    });
    match std::fs::write(&out, &json) {
        Ok(()) => println!("written to {out}"),
        Err(e) => eprintln!("could not write {out}: {e}"),
    }
}
