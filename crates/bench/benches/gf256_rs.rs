//! Erasure-coding benchmarks: the DESIGN.md §8 GF(256) multiply ablation
//! (log/antilog tables vs. shift-and-xor) and Reed–Solomon encode/decode
//! throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use wt_des::rng::Stream;
use wt_sw::erasure::{ErasureCode, StripeSpec};
use wt_sw::gf256;

fn bench_gf_mul(c: &mut Criterion) {
    let mut g = c.benchmark_group("gf256_mul");
    let pairs: Vec<(u8, u8)> = {
        let mut rng = Stream::from_seed(3);
        (0..4096)
            .map(|_| (rng.below(256) as u8, rng.below(256) as u8))
            .collect()
    };
    g.bench_function("table_4k", |b| {
        b.iter(|| {
            let mut acc = 0u8;
            for &(x, y) in &pairs {
                acc ^= gf256::mul(x, y);
            }
            black_box(acc)
        });
    });
    g.bench_function("shift_xor_4k", |b| {
        b.iter(|| {
            let mut acc = 0u8;
            for &(x, y) in &pairs {
                acc ^= gf256::mul_notable(x, y);
            }
            black_box(acc)
        });
    });
    g.finish();
}

fn bench_rs(c: &mut Criterion) {
    let mut g = c.benchmark_group("reed_solomon");
    for (k, m) in [(6usize, 3usize), (10, 4)] {
        let spec = StripeSpec::new(k, m);
        let code = ErasureCode::new(spec);
        let data: Vec<u8> = {
            let mut rng = Stream::from_seed(5);
            (0..k * 64 * 1024).map(|_| rng.below(256) as u8).collect()
        };
        g.throughput(Throughput::Bytes(data.len() as u64));
        g.bench_function(format!("encode_rs_{k}_{m}_64k_shards"), |b| {
            b.iter(|| black_box(code.encode(&data)));
        });
        let shards = code.encode(&data);
        g.bench_function(format!("decode_rs_{k}_{m}_with_{m}_losses"), |b| {
            let mut damaged: Vec<Option<bytes::Bytes>> = shards.iter().cloned().map(Some).collect();
            for i in 0..m {
                damaged[i * 2] = None;
            }
            b.iter(|| black_box(code.decode(&damaged).expect("decodes")));
        });
    }
    g.finish();
}

fn config() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_gf_mul, bench_rs
}
criterion_main!(benches);
