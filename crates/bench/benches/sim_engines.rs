//! End-to-end engine throughput: events/second of the availability and
//! performance simulators, and the repair-policy ablation (serial vs
//! parallel rebuild) from DESIGN.md §8.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wt_cluster::{AvailabilityModel, PerfModel, RebuildModel};
use wt_des::time::SimDuration;
use wt_des::QueueBackend;
use wt_dist::Dist;
use wt_hw::{catalog, TopologySpec};
use wt_sw::{Placement, RedundancyScheme, RepairPolicy};
use wt_workload::TenantWorkload;

const DAY: f64 = 86_400.0;

fn avail_model(parallel: usize) -> AvailabilityModel {
    AvailabilityModel {
        n_nodes: 30,
        redundancy: RedundancyScheme::replication(3),
        placement: Placement::Random,
        objects: 2_000,
        object_bytes: 8 << 30,
        node_ttf: Dist::weibull_mean(0.8, 60.0 * DAY),
        node_replace: Dist::lognormal_mean_cv(4.0 * 3600.0, 1.0),
        rebuild: RebuildModel::Bandwidth {
            link_gbps: 10.0,
            share: 0.5,
        },
        repair: RepairPolicy {
            max_parallel: parallel,
            bandwidth_share: 0.5,
            detection_delay_s: 300.0,
        },
        switches: None,
        disks: None,
        queue: QueueBackend::Heap,
        chaos: None,
    }
}

fn bench_availability(c: &mut Criterion) {
    let mut g = c.benchmark_group("availability_engine");
    for (name, parallel) in [("serial_repair", 1usize), ("parallel16_repair", 16)] {
        let model = avail_model(parallel);
        g.bench_function(format!("1y_30n_2k_objects_{name}"), |b| {
            b.iter(|| black_box(model.run(9, SimDuration::from_years(1.0))));
        });
    }
    g.finish();
}

fn bench_perf(c: &mut Criterion) {
    let model = PerfModel {
        topology: TopologySpec {
            racks: 2,
            nodes_per_rack: 5,
            node: catalog::node_storage_server(catalog::ssd_sata_1t(), 4, catalog::nic_10g()),
            tor: catalog::switch_tor_48x10g(),
            agg: catalog::switch_agg_32x40g(),
            oversubscription: 4.0,
        },
        redundancy: RedundancyScheme::replication(3),
        placement: Placement::Random,
        tenants: vec![TenantWorkload::oltp("shop", 500.0, 100_000)],
        limpware: None,
        inject_failures: false,
        node_ttf: None,
        horizon_s: 60.0,
        queue: QueueBackend::Heap,
        chaos: None,
    };
    c.bench_function("perf_engine_60s_500rps", |b| {
        b.iter(|| black_box(model.run(4)));
    });
}

fn config() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_availability, bench_perf
}
criterion_main!(benches);
