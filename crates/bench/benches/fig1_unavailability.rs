//! Figure 1 regeneration cost, plus the DESIGN.md §8 placement ablation:
//! how the unavailability engine scales with placement policy and
//! replication factor.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wt_cluster::UnavailabilityExperiment;
use wt_des::rng::Stream;
use wt_sw::{Placement, Placer};

fn bench_fig1_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1_point");
    for placement in [Placement::Random, Placement::RoundRobin] {
        let exp = UnavailabilityExperiment {
            trials: 200,
            ..UnavailabilityExperiment::figure1(30, 10_000, 3, placement, 1)
        };
        g.bench_function(format!("N30_n3_{}_f4", placement.label()), |b| {
            b.iter(|| black_box(exp.run_at(4)));
        });
    }
    g.finish();
}

fn bench_placement(c: &mut Criterion) {
    let mut g = c.benchmark_group("placement");
    for placement in [
        Placement::Random,
        Placement::RoundRobin,
        Placement::Copyset { scatter_width: 4 },
    ] {
        g.bench_function(format!("place_10k_objects_{}", placement.label()), |b| {
            b.iter(|| {
                let mut placer = Placer::new(placement, 64, 3, Stream::from_seed(2));
                let mut acc = 0usize;
                for obj in 0..10_000u64 {
                    acc += placer.place(obj)[0];
                }
                black_box(acc)
            });
        });
    }
    g.finish();
}

fn config() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_fig1_point, bench_placement
}
criterion_main!(benches);
