//! WTQL front-end benchmarks: lexing+parsing and plan construction with
//! dominance metadata.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wt_wtql::{parse, Plan};

const QUERY: &str = r#"
    EXPLORE availability, tco_usd_per_year
    SWEEP replication IN [2, 3, 4, 5],
          nic IN ["1g", "10g", "40g"],
          placement IN ["R", "RR", "CS"],
          repair_parallel IN [1, 4, 16, 64]
    WHERE replication >= 2
    SUBJECT TO availability >= 0.9999, objects_lost <= 0
    MINIMIZE tco_usd_per_year
    OPTIONS threads = 4, probe_fraction = 0.1
"#;

fn bench_parse(c: &mut Criterion) {
    c.bench_function("parse_full_query", |b| {
        b.iter(|| black_box(parse(QUERY).expect("parses")));
    });
}

fn bench_plan(c: &mut Criterion) {
    let query = parse(QUERY).expect("parses");
    c.bench_function("plan_144_config_grid", |b| {
        b.iter(|| black_box(Plan::build(&query).expect("plans")));
    });
    let plan = Plan::build(&query).expect("plans");
    c.bench_function("dominance_check_all_pairs", |b| {
        b.iter(|| {
            let mut dominated = 0usize;
            let failed = &plan.configs[0];
            for c in &plan.configs {
                if plan.dominated_by_failure(c, failed) {
                    dominated += 1;
                }
            }
            black_box(dominated)
        });
    });
}

fn config() -> Criterion {
    Criterion::default().sample_size(20)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_parse, bench_plan
}
criterion_main!(benches);
