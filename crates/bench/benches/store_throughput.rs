//! Result-store append throughput: the single-lock `SharedStore`
//! baseline vs the sharded per-worker recording path, at 1/2/4/8
//! workers.
//!
//! What is timed is the **worker-side recording phase** — the cost a
//! simulation thread pays per record, which is exactly what the sharded
//! design removes from the farm's critical path:
//!
//! * **mutex arm**: every worker appends through the shared store's
//!   write lock; each append also pays id assignment, the journal
//!   check, and per-experiment index maintenance while holding the
//!   lock.
//! * **sharded arm**: every worker pushes into a private `StoreShard` —
//!   a plain `Vec` push, no lock, no index work.
//!
//! The deterministic in-order merge (where ids are assigned and indexes
//! built) is timed **separately** and reported as `merge rec/s`: in the
//! real farm the merge runs on the fold thread, overlapped with the
//! workers' ongoing simulation, so it is off the recording critical
//! path — folding it into the workers' number would charge the sharded
//! design for time the workers never wait.
//!
//! Workers synchronize on a barrier before recording; the timer starts
//! before the main thread enters the barrier and stops after the last
//! join, so the window provably covers the whole recording phase (a
//! conservative over-count, applied to both arms alike). On a
//! single-core host the mutex arm never even contends — real contention
//! only widens the gap in the sharded design's favor, so the reported
//! speedup is a floor.
//!
//! Prints one row per worker count and writes the measured numbers to
//! `BENCH_store.json` at the workspace root (override the path with
//! `BENCH_STORE_OUT=...`), so the speedup is a committed, regenerable
//! artifact.

use std::fmt::Write as _;
use std::sync::Barrier;
use std::time::Instant;
use wt_store::{RecordSink, RunRecord, SharedStore, StoreShard};

/// Records appended per measurement (split evenly across workers).
const TOTAL: usize = 200_000;
/// Timed samples per configuration; the best sample is reported, the
/// mean is recorded alongside it.
const SAMPLES: usize = 10;

fn make_records(n: usize, seed: u64) -> Vec<RunRecord> {
    (0..n)
        .map(|i| {
            RunRecord::new("bench", seed * 1_000_000 + i as u64)
                .param("n", i)
                .param("placement", "R")
                .metric("availability", 0.999)
                .metric("tco_usd_per_year", 12_345.0)
        })
        .collect()
}

/// One timed run of the mutex baseline: `workers` threads all appending
/// through the shared store's write lock. Returns the recording-phase
/// seconds.
fn run_mutex(workers: usize) -> f64 {
    let per = TOTAL / workers;
    let batches: Vec<Vec<RunRecord>> = (0..workers).map(|t| make_records(per, t as u64)).collect();
    let store = SharedStore::new();
    let barrier = Barrier::new(workers + 1);
    let elapsed = std::thread::scope(|scope| {
        let handles: Vec<_> = batches
            .into_iter()
            .map(|batch| {
                let store = store.clone();
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    for r in batch {
                        store.append(r);
                    }
                })
            })
            .collect();
        let start = Instant::now();
        barrier.wait();
        for h in handles {
            h.join().expect("worker panicked");
        }
        start.elapsed().as_secs_f64()
    });
    assert_eq!(store.len(), per * workers);
    elapsed
}

/// One timed run of the sharded path: `workers` threads filling private
/// shards (the recording phase), then a deterministic in-order merge
/// into the shared store. Returns `(record_secs, merge_secs)` — the two
/// phases the sharded design splits the mutex arm's single cost into.
fn run_sharded(workers: usize) -> (f64, f64) {
    let per = TOTAL / workers;
    let batches: Vec<Vec<RunRecord>> = (0..workers).map(|t| make_records(per, t as u64)).collect();
    let store = SharedStore::new();
    let barrier = Barrier::new(workers + 1);
    let (shards, record_secs): (Vec<StoreShard>, f64) = std::thread::scope(|scope| {
        let handles: Vec<_> = batches
            .into_iter()
            .map(|batch| {
                let barrier = &barrier;
                scope.spawn(move || {
                    let shard = StoreShard::new();
                    barrier.wait();
                    for r in batch {
                        shard.record(r);
                    }
                    shard
                })
            })
            .collect();
        let start = Instant::now();
        barrier.wait();
        let shards = handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect();
        (shards, start.elapsed().as_secs_f64())
    });
    let start = Instant::now();
    for shard in shards {
        store.merge_shard(shard);
    }
    let merge_secs = start.elapsed().as_secs_f64();
    assert_eq!(store.len(), per * workers);
    (record_secs, merge_secs)
}

/// (best, mean) records/s over `SAMPLES` runs of `f`.
fn measure(f: impl Fn() -> f64) -> (f64, f64) {
    f(); // warmup
    let secs: Vec<f64> = (0..SAMPLES).map(|_| f()).collect();
    let best = secs.iter().cloned().fold(f64::INFINITY, f64::min);
    let mean = secs.iter().sum::<f64>() / secs.len() as f64;
    (TOTAL as f64 / best, TOTAL as f64 / mean)
}

fn fmt_rate(r: f64) -> String {
    format!("{:.1}M", r / 1e6)
}

fn main() {
    println!(
        "store_throughput: {TOTAL} record appends per run, {SAMPLES} samples, best-of reported"
    );
    println!("(shard rec/s is the workers' recording phase; the deterministic merge");
    println!(" runs on the farm's fold thread and is reported separately)");
    println!(
        "{:>7}  {:>12}  {:>12}  {:>12}  {:>8}",
        "workers", "mutex rec/s", "shard rec/s", "merge rec/s", "speedup"
    );

    let mut rows = String::new();
    let mut speedup_at_8 = 0.0;
    for workers in [1usize, 2, 4, 8] {
        let (mutex_best, mutex_mean) = measure(|| run_mutex(workers));
        let (record_best, record_mean) = measure(|| run_sharded(workers).0);
        let (merge_best, merge_mean) = measure(|| run_sharded(workers).1);
        let speedup = record_best / mutex_best;
        if workers == 8 {
            speedup_at_8 = speedup;
        }
        println!(
            "{workers:>7}  {:>12}  {:>12}  {:>12}  {speedup:>7.2}x",
            fmt_rate(mutex_best),
            fmt_rate(record_best),
            fmt_rate(merge_best),
        );
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        let _ = write!(
            rows,
            "    {{\"workers\": {workers}, \
             \"mutex_recs_per_s\": {mutex_best:.0}, \"mutex_recs_per_s_mean\": {mutex_mean:.0}, \
             \"sharded_recs_per_s\": {record_best:.0}, \"sharded_recs_per_s_mean\": {record_mean:.0}, \
             \"merge_recs_per_s\": {merge_best:.0}, \"merge_recs_per_s_mean\": {merge_mean:.0}, \
             \"speedup\": {speedup:.2}}}"
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"store_throughput\",\n  \"records_per_run\": {TOTAL},\n  \
         \"samples\": {SAMPLES},\n  \
         \"metric\": \"worker-side records appended per second, best sample; \
         merge runs on the fold thread and is timed separately\",\n  \
         \"results\": [\n{rows}\n  ],\n  \"speedup_at_8_workers\": {speedup_at_8:.2}\n}}\n"
    );
    let out = std::env::var("BENCH_STORE_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_store.json").to_string()
    });
    match std::fs::write(&out, &json) {
        Ok(()) => println!("\nresults written to {out}"),
        Err(e) => eprintln!("\nwarning: could not write {out}: {e}"),
    }
}
