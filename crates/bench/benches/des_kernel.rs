//! DES kernel micro-benchmarks: event queue throughput (the DESIGN.md §8
//! heap-vs-baseline ablation), resource-pool cycling, and RNG streams.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use wt_des::rng::Stream;
use wt_des::{CalendarQueue, EventQueue, ServerPool, SimTime};

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    for &n in &[1_000usize, 100_000] {
        g.bench_function(format!("push_pop_{n}"), |b| {
            let mut rng = Stream::from_seed(1);
            let times: Vec<f64> = (0..n).map(|_| rng.uniform() * 1e6).collect();
            b.iter_batched(
                EventQueue::new,
                |mut q| {
                    for (i, &t) in times.iter().enumerate() {
                        q.push(SimTime::from_secs(t), i);
                    }
                    while let Some(ev) = q.pop() {
                        black_box(ev);
                    }
                },
                BatchSize::SmallInput,
            );
        });
        g.bench_function(format!("calendar_queue_{n}"), |b| {
            let mut rng = Stream::from_seed(1);
            let times: Vec<f64> = (0..n).map(|_| rng.uniform() * 1e6).collect();
            b.iter_batched(
                CalendarQueue::new,
                |mut q| {
                    for (i, &t) in times.iter().enumerate() {
                        q.push(SimTime::from_secs(t), i);
                    }
                    while let Some(ev) = q.pop() {
                        black_box(ev);
                    }
                },
                BatchSize::SmallInput,
            );
        });
        // Baseline ablation: a sorted Vec (what a naive implementation
        // would use) — O(n) inserts vs the heap's O(log n).
        g.bench_function(format!("sorted_vec_baseline_{n}"), |b| {
            let mut rng = Stream::from_seed(1);
            let times: Vec<f64> = (0..n.min(10_000)).map(|_| rng.uniform() * 1e6).collect();
            b.iter(|| {
                let mut v: Vec<(f64, usize)> = Vec::new();
                for (i, &t) in times.iter().enumerate() {
                    let pos = v.partition_point(|(x, _)| *x <= t);
                    v.insert(pos, (t, i));
                }
                black_box(v.len())
            });
        });
    }
    g.finish();
}

fn bench_server_pool(c: &mut Criterion) {
    c.bench_function("server_pool_cycle_10k", |b| {
        b.iter(|| {
            let mut p: ServerPool<u64> = ServerPool::new(4, SimTime::ZERO);
            let mut t = 0.0;
            for i in 0..10_000u64 {
                t += 0.001;
                if p.arrive(SimTime::from_secs(t), i).is_none() && i % 2 == 0 {
                    let _ = p.depart(SimTime::from_secs(t));
                }
            }
            black_box(p.completions())
        });
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("xoshiro_uniform_1m", |b| {
        let mut s = Stream::from_seed(7);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..1_000_000 {
                acc += s.uniform();
            }
            black_box(acc)
        });
    });
    c.bench_function("sample_indices_5_of_30", |b| {
        let mut s = Stream::from_seed(7);
        b.iter(|| black_box(s.sample_indices(30, 5)));
    });
}

fn config() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_event_queue, bench_server_pool, bench_rng
}
criterion_main!(benches);
