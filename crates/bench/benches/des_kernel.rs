//! DES kernel micro-benchmarks: event queue throughput (the DESIGN.md §8
//! heap-vs-baseline ablation), engine-in-the-loop workloads on both queue
//! backends, resource-pool cycling, and RNG streams.
//!
//! The engine group here is the Criterion-tracked twin of the
//! `kernel_engine` bench (which emits `BENCH_kernel.json`): same two
//! workload shapes — failure/repair churn with a large pending set, and
//! an M/M/c station with a tiny one — at budgets small enough for
//! Criterion's repeated sampling.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use wt_des::prelude::*;
use wt_des::rng::{RngFactory, Stream};
use wt_des::{CalendarQueue, EventQueue, ServerPool, SimTime};
use wt_dist::Dist;

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    for &n in &[1_000usize, 100_000] {
        g.bench_function(format!("push_pop_{n}"), |b| {
            let mut rng = Stream::from_seed(1);
            let times: Vec<f64> = (0..n).map(|_| rng.uniform() * 1e6).collect();
            b.iter_batched(
                EventQueue::new,
                |mut q| {
                    for (i, &t) in times.iter().enumerate() {
                        q.push(SimTime::from_secs(t), i);
                    }
                    while let Some(ev) = q.pop() {
                        black_box(ev);
                    }
                },
                BatchSize::SmallInput,
            );
        });
        g.bench_function(format!("calendar_queue_{n}"), |b| {
            let mut rng = Stream::from_seed(1);
            let times: Vec<f64> = (0..n).map(|_| rng.uniform() * 1e6).collect();
            b.iter_batched(
                CalendarQueue::new,
                |mut q| {
                    for (i, &t) in times.iter().enumerate() {
                        q.push(SimTime::from_secs(t), i);
                    }
                    while let Some(ev) = q.pop() {
                        black_box(ev);
                    }
                },
                BatchSize::SmallInput,
            );
        });
        // Baseline ablation: a sorted Vec (what a naive implementation
        // would use) — O(n) inserts vs the heap's O(log n).
        g.bench_function(format!("sorted_vec_baseline_{n}"), |b| {
            let mut rng = Stream::from_seed(1);
            let times: Vec<f64> = (0..n.min(10_000)).map(|_| rng.uniform() * 1e6).collect();
            b.iter(|| {
                let mut v: Vec<(f64, usize)> = Vec::new();
                for (i, &t) in times.iter().enumerate() {
                    let pos = v.partition_point(|(x, _)| *x <= t);
                    v.insert(pos, (t, i));
                }
                black_box(v.len())
            });
        });
    }
    g.finish();
}

// --- engine-in-the-loop: Simulation driving each queue backend ----------

enum ChurnEv {
    Fail(u32),
    Repair(u32),
}

struct Churn {
    rng: Stream,
    mean_up: Dist,
    mean_down: Dist,
    failures: u64,
}

impl Model for Churn {
    type Event = ChurnEv;
    fn handle(&mut self, ev: ChurnEv, ctx: &mut Ctx<'_, ChurnEv>) {
        match ev {
            ChurnEv::Fail(c) => {
                self.failures += 1;
                let down = SimDuration::from_secs(self.mean_down.sample(&mut self.rng));
                ctx.schedule_in(down, ChurnEv::Repair(c));
            }
            ChurnEv::Repair(c) => {
                let up = SimDuration::from_secs(self.mean_up.sample(&mut self.rng));
                ctx.schedule_in(up, ChurnEv::Fail(c));
            }
        }
    }
    fn label(ev: &ChurnEv) -> &'static str {
        match ev {
            ChurnEv::Fail(_) => "Fail",
            ChurnEv::Repair(_) => "Repair",
        }
    }
}

/// Churn with `components` always-pending timers for `events` events.
fn run_churn<Q: PendingEvents<ChurnEv> + Default>(components: usize, events: u64) -> u64 {
    let factory = RngFactory::new(1);
    let model = Churn {
        rng: factory.stream("churn"),
        mean_up: Dist::exponential_mean(1.0),
        mean_down: Dist::exponential_mean(0.05),
        failures: 0,
    };
    let mut sim = Simulation::with_queue(model, 1, Q::default());
    sim.reserve_events(components);
    let mut seed_rng = factory.stream("phases");
    for c in 0..components {
        let phase = SimDuration::from_secs(seed_rng.uniform());
        sim.schedule_in(phase, ChurnEv::Fail(c as u32));
    }
    sim.set_event_budget(events);
    sim.run();
    sim.model().failures
}

enum MmcEv {
    Arrival,
    Departure,
}

struct Mmc {
    interarrival: Dist,
    service: Dist,
    pool: ServerPool<()>,
    rng: Stream,
}

impl Model for Mmc {
    type Event = MmcEv;
    fn handle(&mut self, ev: MmcEv, ctx: &mut Ctx<'_, MmcEv>) {
        let now = ctx.now();
        match ev {
            MmcEv::Arrival => {
                let gap = SimDuration::from_secs(self.interarrival.sample(&mut self.rng));
                ctx.schedule_in(gap, MmcEv::Arrival);
                if self.pool.arrive(now, ()).is_some() {
                    let s = SimDuration::from_secs(self.service.sample(&mut self.rng));
                    ctx.schedule_in(s, MmcEv::Departure);
                }
            }
            MmcEv::Departure => {
                if self.pool.depart(now).is_some() {
                    let s = SimDuration::from_secs(self.service.sample(&mut self.rng));
                    ctx.schedule_in(s, MmcEv::Departure);
                }
            }
        }
    }
    fn label(ev: &MmcEv) -> &'static str {
        match ev {
            MmcEv::Arrival => "Arrival",
            MmcEv::Departure => "Departure",
        }
    }
}

/// M/M/4 at rho = 0.9 for `events` events; tiny pending set.
fn run_mmc<Q: PendingEvents<MmcEv> + Default>(events: u64) -> u64 {
    let factory = RngFactory::new(1);
    let model = Mmc {
        interarrival: Dist::exponential_mean(1.0),
        service: Dist::exponential_mean(3.6),
        pool: ServerPool::new(4, SimTime::ZERO),
        rng: factory.stream("mmc"),
    };
    let mut sim = Simulation::with_queue(model, 1, Q::default());
    sim.schedule_at(SimTime::ZERO, MmcEv::Arrival);
    sim.set_event_budget(events);
    sim.run();
    sim.model().pool.completions()
}

fn bench_engine_backends(c: &mut Criterion) {
    const COMPONENTS: usize = 2_048;
    const EVENTS: u64 = 200_000;
    let mut g = c.benchmark_group("engine");
    g.bench_function("churn_heap", |b| {
        b.iter(|| black_box(run_churn::<EventQueue<ChurnEv>>(COMPONENTS, EVENTS)));
    });
    g.bench_function("churn_calendar", |b| {
        b.iter(|| black_box(run_churn::<CalendarQueue<ChurnEv>>(COMPONENTS, EVENTS)));
    });
    g.bench_function("mmc_heap", |b| {
        b.iter(|| black_box(run_mmc::<EventQueue<MmcEv>>(EVENTS)));
    });
    g.bench_function("mmc_calendar", |b| {
        b.iter(|| black_box(run_mmc::<CalendarQueue<MmcEv>>(EVENTS)));
    });
    g.finish();
}

fn bench_server_pool(c: &mut Criterion) {
    c.bench_function("server_pool_cycle_10k", |b| {
        b.iter(|| {
            let mut p: ServerPool<u64> = ServerPool::new(4, SimTime::ZERO);
            let mut t = 0.0;
            for i in 0..10_000u64 {
                t += 0.001;
                if p.arrive(SimTime::from_secs(t), i).is_none() && i % 2 == 0 {
                    let _ = p.depart(SimTime::from_secs(t));
                }
            }
            black_box(p.completions())
        });
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("xoshiro_uniform_1m", |b| {
        let mut s = Stream::from_seed(7);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..1_000_000 {
                acc += s.uniform();
            }
            black_box(acc)
        });
    });
    c.bench_function("sample_indices_5_of_30", |b| {
        let mut s = Stream::from_seed(7);
        b.iter(|| black_box(s.sample_indices(30, 5)));
    });
}

fn config() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_event_queue, bench_engine_backends, bench_server_pool, bench_rng
}
criterion_main!(benches);
