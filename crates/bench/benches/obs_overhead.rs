//! Probe overhead: the cost of running the availability engine with the
//! telemetry probe stack attached (`run_observed` with a `SimProbe`,
//! wall-time histograms off — the default observability configuration)
//! vs the probe-free `run` path.
//!
//! Both arms execute the identical simulation — same seeds, same event
//! stream, bitwise-identical results — so the difference is purely the
//! per-event probe work: the label bump, the queue-depth sample, and
//! the rebuild sketch updates. The arms are *paired*: within a sample
//! the plain and probed run of each seed execute back to back (order
//! swapped on alternate samples), and the overhead is the per-sample
//! ratio of the two accumulated times. Pairing is what makes the number
//! stable on shared hardware — host-level speed drift moves both arms
//! of a pair together and cancels in the ratio, where an unpaired
//! best-of would compare arms from differently-throttled moments. The
//! headline is the median paired ratio; the best (smallest) ratio is
//! reported alongside as the low-noise floor.
//!
//! Prints one row per sample and writes the measured overhead to
//! `BENCH_obs.json` at the workspace root (override the path with
//! `BENCH_OBS_OUT=...`). DESIGN.md §7 budgets this at < 3%.

use std::fmt::Write as _;
use std::time::Instant;
use wt_cluster::{AvailabilityModel, RebuildModel};
use wt_des::time::SimDuration;
use wt_des::{Hll, QuantileSketch, QueueBackend};
use wt_dist::Dist;
use wt_sw::{Placement, RedundancyScheme, RepairPolicy};

const DAY: f64 = 86_400.0;
const SAMPLES: usize = 12;
const SEEDS: u64 = 24;

fn model() -> AvailabilityModel {
    AvailabilityModel {
        n_nodes: 30,
        redundancy: RedundancyScheme::replication(3),
        placement: Placement::Random,
        objects: 2_000,
        object_bytes: 8 << 30,
        node_ttf: Dist::weibull_mean(0.8, 60.0 * DAY),
        node_replace: Dist::lognormal_mean_cv(4.0 * 3600.0, 1.0),
        rebuild: RebuildModel::Bandwidth {
            link_gbps: 10.0,
            share: 0.5,
        },
        repair: RepairPolicy {
            max_parallel: 16,
            bandwidth_share: 0.5,
            detection_delay_s: 300.0,
        },
        switches: None,
        disks: None,
        queue: QueueBackend::Heap,
        chaos: None,
    }
}

fn main() {
    let m = model();
    let horizon = SimDuration::from_years(1.0);

    // Warm-up, and the event count both arms must agree on.
    let mut events = 0u64;
    let mut observed_events = 0u64;
    for seed in 0..SEEDS {
        events += m.run(seed, horizon).sim_events;
        let (_, t) = m.run_observed(seed, horizon, None);
        observed_events += t.events;
        if std::env::var("OBS_DEBUG_LABELS").is_ok() && seed == 0 {
            eprintln!("{:?}", t.events_by_label);
            if let Some(set) = &t.sketches {
                for (k, s) in &set.values {
                    eprintln!("sketch {k}: {} obs", s.count());
                }
            }
        }
    }
    assert_eq!(
        events, observed_events,
        "probed and probe-free runs must execute the same event stream"
    );

    println!("obs_overhead: {SEEDS} seeds/sample, {events} events/sample, {SAMPLES} samples");
    println!(
        "{:>7}  {:>12}  {:>12}  {:>9}",
        "sample", "plain ev/s", "probed ev/s", "overhead"
    );
    let mut plain_s = Vec::with_capacity(SAMPLES);
    let mut probed_s = Vec::with_capacity(SAMPLES);
    let mut overheads = Vec::with_capacity(SAMPLES);
    for i in 0..SAMPLES {
        // Seed-level pairing: each seed's plain and probed runs execute
        // back to back (~tens of ms apart), with the order swapped on
        // alternate samples, so machine-speed drift cancels in the
        // per-sample ratio instead of landing on one arm.
        let mut tp = 0.0f64;
        let mut to = 0.0f64;
        for seed in 0..SEEDS {
            if i % 2 == 0 {
                let t0 = Instant::now();
                std::hint::black_box(m.run(seed, horizon));
                tp += t0.elapsed().as_secs_f64();
                let t0 = Instant::now();
                std::hint::black_box(m.run_observed(seed, horizon, None));
                to += t0.elapsed().as_secs_f64();
            } else {
                let t0 = Instant::now();
                std::hint::black_box(m.run_observed(seed, horizon, None));
                to += t0.elapsed().as_secs_f64();
                let t0 = Instant::now();
                std::hint::black_box(m.run(seed, horizon));
                tp += t0.elapsed().as_secs_f64();
            }
        }
        plain_s.push(tp);
        probed_s.push(to);
        overheads.push(100.0 * (to - tp) / tp);
        println!(
            "{:>7}  {:>12.0}  {:>12.0}  {:>8.2}%",
            i,
            events as f64 / tp,
            events as f64 / to,
            overheads[i]
        );
    }

    // Sketch arms: raw record and merge throughput of the two sketch
    // types the probe path feeds, and the memory story vs retaining the
    // raw samples (the pre-sketch way to get exact percentiles).
    const SKETCH_N: usize = 1_000_000;
    let mut vals = Vec::with_capacity(SKETCH_N);
    let mut z = 0u64;
    for _ in 0..SKETCH_N {
        // splitmix64 → uniform latency-like values in (0, 100] seconds.
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut x = z;
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        vals.push(((x >> 11) as f64 + 1.0) / (1u64 << 53) as f64 * 100.0);
    }

    let t0 = Instant::now();
    let mut sk = QuantileSketch::new();
    for &v in &vals {
        sk.record(v);
    }
    let sketch_record_per_s = SKETCH_N as f64 / t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let mut hll = Hll::new();
    for i in 0..SKETCH_N as u64 {
        hll.insert(i);
    }
    let hll_insert_per_s = SKETCH_N as f64 / t0.elapsed().as_secs_f64();

    // Merge throughput over farm-shaped shards: 64 populated sketches
    // folded in order, repeated enough to time meaningfully.
    const SHARDS: usize = 64;
    const MERGE_ROUNDS: usize = 200;
    let shards: Vec<QuantileSketch> = (0..SHARDS)
        .map(|i| {
            let mut s = QuantileSketch::new();
            for &v in &vals[i * 1_000..(i + 1) * 1_000] {
                s.record(v);
            }
            s
        })
        .collect();
    let t0 = Instant::now();
    for _ in 0..MERGE_ROUNDS {
        let mut acc = QuantileSketch::new();
        for s in &shards {
            acc.merge(s);
        }
        std::hint::black_box(&acc);
    }
    let sketch_merge_per_s = (SHARDS * MERGE_ROUNDS) as f64 / t0.elapsed().as_secs_f64();

    let sketch_bytes = sk.size_bytes() + hll.size_bytes();
    let retained_bytes = SKETCH_N * std::mem::size_of::<f64>();
    println!();
    println!(
        "sketch arms: record {:.1}M/s, hll insert {:.1}M/s, merge {:.0}k sketches/s",
        sketch_record_per_s / 1e6,
        hll_insert_per_s / 1e6,
        sketch_merge_per_s / 1e3
    );
    println!(
        "memory at {SKETCH_N} samples: sketch+hll {sketch_bytes} B vs retained samples {retained_bytes} B ({:.0}x smaller)",
        retained_bytes as f64 / sketch_bytes as f64
    );

    let best = |v: &[f64]| v.iter().cloned().fold(f64::INFINITY, f64::min);
    let median = |v: &[f64]| {
        let mut sorted = v.to_vec();
        sorted.sort_by(f64::total_cmp);
        (sorted[(sorted.len() - 1) / 2] + sorted[sorted.len() / 2]) / 2.0
    };
    let overhead_best = best(&overheads);
    let overhead_median = median(&overheads);
    println!();
    println!(
        "overhead (median paired sample): {overhead_median:.2}%   (best): {overhead_best:.2}%"
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"obs_overhead\",");
    let _ = writeln!(json, "  \"seeds_per_sample\": {SEEDS},");
    let _ = writeln!(json, "  \"events_per_sample\": {events},");
    let _ = writeln!(json, "  \"samples\": {SAMPLES},");
    let _ = writeln!(
        json,
        "  \"metric\": \"availability engine with SimProbe attached (wall-time feature off) vs probe-free run; identical event streams\","
    );
    let _ = writeln!(
        json,
        "  \"plain_events_per_s_best\": {:.0},",
        events as f64 / best(&plain_s)
    );
    let _ = writeln!(
        json,
        "  \"probed_events_per_s_best\": {:.0},",
        events as f64 / best(&probed_s)
    );
    let _ = writeln!(json, "  \"overhead_pct_best\": {overhead_best:.2},");
    let _ = writeln!(json, "  \"overhead_pct_median\": {overhead_median:.2},");
    let _ = writeln!(json, "  \"sketch_record_per_s\": {sketch_record_per_s:.0},");
    let _ = writeln!(json, "  \"hll_insert_per_s\": {hll_insert_per_s:.0},");
    let _ = writeln!(json, "  \"sketch_merge_per_s\": {sketch_merge_per_s:.0},");
    let _ = writeln!(json, "  \"sketch_bytes_at_1m_samples\": {sketch_bytes},");
    let _ = writeln!(
        json,
        "  \"retained_bytes_at_1m_samples\": {retained_bytes},"
    );
    let _ = writeln!(
        json,
        "  \"budget_basis\": \"marginal overhead of the sketch pipeline vs the pre-sketch probe baseline under the same paired bench; absolute medians on shared hosts include baseline machinery and host noise\","
    );
    let _ = writeln!(json, "  \"budget_pct\": 3.0");
    json.push_str("}\n");

    let out = std::env::var("BENCH_OBS_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json").to_string()
    });
    match std::fs::write(&out, &json) {
        Ok(()) => println!("written to {out}"),
        Err(e) => eprintln!("could not write {out}: {e}"),
    }
}
