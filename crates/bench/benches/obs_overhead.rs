//! Probe overhead: the cost of running the availability engine with the
//! telemetry probe stack attached (`run_observed` with a `SimProbe`,
//! wall-time histograms off — the default observability configuration)
//! vs the probe-free `run` path.
//!
//! Both arms execute the identical simulation — same seeds, same event
//! stream, bitwise-identical results — so the difference is purely the
//! per-event probe dispatch: one label lookup, two counter bumps and a
//! queue-depth sample. The arms are interleaved sample by sample, with
//! the order swapped on alternate samples so clock drift and thermal
//! effects hit both alike; each arm's best sample gives the headline
//! number (best-of is the standard way to strip scheduler noise from a
//! throughput floor) and the median is reported alongside.
//!
//! Prints one row per sample and writes the measured overhead to
//! `BENCH_obs.json` at the workspace root (override the path with
//! `BENCH_OBS_OUT=...`). DESIGN.md §7 budgets this at < 3%.

use std::fmt::Write as _;
use std::time::Instant;
use wt_cluster::{AvailabilityModel, RebuildModel};
use wt_des::time::SimDuration;
use wt_des::QueueBackend;
use wt_dist::Dist;
use wt_sw::{Placement, RedundancyScheme, RepairPolicy};

const DAY: f64 = 86_400.0;
const SAMPLES: usize = 12;
const SEEDS: u64 = 8;

fn model() -> AvailabilityModel {
    AvailabilityModel {
        n_nodes: 30,
        redundancy: RedundancyScheme::replication(3),
        placement: Placement::Random,
        objects: 2_000,
        object_bytes: 8 << 30,
        node_ttf: Dist::weibull_mean(0.8, 60.0 * DAY),
        node_replace: Dist::lognormal_mean_cv(4.0 * 3600.0, 1.0),
        rebuild: RebuildModel::Bandwidth {
            link_gbps: 10.0,
            share: 0.5,
        },
        repair: RepairPolicy {
            max_parallel: 16,
            bandwidth_share: 0.5,
            detection_delay_s: 300.0,
        },
        switches: None,
        disks: None,
        queue: QueueBackend::Heap,
        chaos: None,
    }
}

fn main() {
    let m = model();
    let horizon = SimDuration::from_years(1.0);

    // Warm-up, and the event count both arms must agree on.
    let mut events = 0u64;
    let mut observed_events = 0u64;
    for seed in 0..SEEDS {
        events += m.run(seed, horizon).sim_events;
        let (_, t) = m.run_observed(seed, horizon, None);
        observed_events += t.events;
    }
    assert_eq!(
        events, observed_events,
        "probed and probe-free runs must execute the same event stream"
    );

    println!("obs_overhead: {SEEDS} seeds/sample, {events} events/sample, {SAMPLES} samples");
    println!(
        "{:>7}  {:>12}  {:>12}",
        "sample", "plain ev/s", "probed ev/s"
    );
    let mut plain_s = Vec::with_capacity(SAMPLES);
    let mut probed_s = Vec::with_capacity(SAMPLES);
    let time_plain = |out: &mut Vec<f64>| {
        let t0 = Instant::now();
        for seed in 0..SEEDS {
            std::hint::black_box(m.run(seed, horizon));
        }
        out.push(t0.elapsed().as_secs_f64());
    };
    let time_probed = |out: &mut Vec<f64>| {
        let t0 = Instant::now();
        for seed in 0..SEEDS {
            std::hint::black_box(m.run_observed(seed, horizon, None));
        }
        out.push(t0.elapsed().as_secs_f64());
    };
    for i in 0..SAMPLES {
        // Swap arm order on alternate samples: slow drift (thermal,
        // noisy neighbors) then penalizes each arm equally often.
        if i % 2 == 0 {
            time_plain(&mut plain_s);
            time_probed(&mut probed_s);
        } else {
            time_probed(&mut probed_s);
            time_plain(&mut plain_s);
        }
        println!(
            "{:>7}  {:>12.0}  {:>12.0}",
            i,
            events as f64 / plain_s[i],
            events as f64 / probed_s[i]
        );
    }

    let best = |v: &[f64]| v.iter().cloned().fold(f64::INFINITY, f64::min);
    let median = |v: &[f64]| {
        let mut sorted = v.to_vec();
        sorted.sort_by(f64::total_cmp);
        (sorted[(sorted.len() - 1) / 2] + sorted[sorted.len() / 2]) / 2.0
    };
    let overhead_best = 100.0 * (best(&probed_s) - best(&plain_s)) / best(&plain_s);
    let overhead_median = 100.0 * (median(&probed_s) - median(&plain_s)) / median(&plain_s);
    println!();
    println!("overhead (best sample): {overhead_best:.2}%   (median): {overhead_median:.2}%");

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"obs_overhead\",");
    let _ = writeln!(json, "  \"seeds_per_sample\": {SEEDS},");
    let _ = writeln!(json, "  \"events_per_sample\": {events},");
    let _ = writeln!(json, "  \"samples\": {SAMPLES},");
    let _ = writeln!(
        json,
        "  \"metric\": \"availability engine with SimProbe attached (wall-time feature off) vs probe-free run; identical event streams\","
    );
    let _ = writeln!(
        json,
        "  \"plain_events_per_s_best\": {:.0},",
        events as f64 / best(&plain_s)
    );
    let _ = writeln!(
        json,
        "  \"probed_events_per_s_best\": {:.0},",
        events as f64 / best(&probed_s)
    );
    let _ = writeln!(json, "  \"overhead_pct_best\": {overhead_best:.2},");
    let _ = writeln!(json, "  \"overhead_pct_median\": {overhead_median:.2},");
    let _ = writeln!(json, "  \"budget_pct\": 3.0");
    json.push_str("}\n");

    let out = std::env::var("BENCH_OBS_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json").to_string()
    });
    match std::fs::write(&out, &json) {
        Ok(()) => println!("written to {out}"),
        Err(e) => eprintln!("could not write {out}: {e}"),
    }
}
