//! Engine-in-the-loop kernel benchmark: drives [`Simulation`] itself —
//! handler dispatch, RNG draws, probe plumbing and the future-event list
//! together — rather than raw queue push/pop (that microbench lives in
//! `des_kernel`). Two workloads bracket the wind tunnel's event profiles:
//!
//! * `churn` — a failure/repair churn model: every component always has
//!   exactly one pending timer, so the pending set stays at `COMPONENTS`
//!   (thousands) and the future-event list dominates per-event cost. This
//!   is the availability engine's steady-state shape at cluster scale.
//! * `mmc` — an M/M/c station: a handful of pending events (one arrival,
//!   c departures), handler and RNG cost dominate. This is the perf
//!   engine's shape, and the regime where a fancy event list cannot win —
//!   it is here to prove the backend abstraction costs nothing.
//!
//! Arms are interleaved sample by sample with the order rotated so slow
//! drift penalizes each alike; best-of strips scheduler noise and the
//! median is reported alongside. Writes `BENCH_kernel.json` at the
//! workspace root (override with `BENCH_KERNEL_OUT=...`).
//!
//! Both backends execute the identical event stream — the engine's
//! `(time, seq)` contract pins event order, so RNG draws and model end
//! state are bitwise-equal across arms; the bench asserts this before
//! timing anything.

use std::fmt::Write as _;
use std::time::Instant;
use wt_cluster::availability::{AvailabilityModel, DiskFailureModel, RebuildModel};
use wt_cluster::PartitionedAvailability;
use wt_des::prelude::*;
use wt_des::rng::RngFactory;
use wt_des::{CalendarQueue, EventQueue, ServerPool};
use wt_dist::Dist;
use wt_sw::{Placement, RedundancyScheme, RepairPolicy};

const SAMPLES: usize = 10;

/// A bench arm: label plus a thunk returning the run fingerprint
/// (events executed, final clock, model state hash).
type Arm<'a> = (&'a str, &'a dyn Fn() -> (u64, SimTime, u64));
const COMPONENTS: usize = 8192;
const CHURN_EVENTS: u64 = 1_500_000;
const MMC_EVENTS: u64 = 1_500_000;

// --- churn: COMPONENTS self-rescheduling failure/repair timers ----------

enum ChurnEv {
    Fail(u32),
    Repair(u32),
}

struct Churn {
    rng: wt_des::rng::Stream,
    mean_up: Dist,
    mean_down: Dist,
    failures: u64,
}

impl Model for Churn {
    type Event = ChurnEv;
    fn handle(&mut self, ev: ChurnEv, ctx: &mut Ctx<'_, ChurnEv>) {
        match ev {
            ChurnEv::Fail(c) => {
                self.failures += 1;
                let down = SimDuration::from_secs(self.mean_down.sample(&mut self.rng));
                ctx.schedule_in(down, ChurnEv::Repair(c));
            }
            ChurnEv::Repair(c) => {
                let up = SimDuration::from_secs(self.mean_up.sample(&mut self.rng));
                ctx.schedule_in(up, ChurnEv::Fail(c));
            }
        }
    }
    fn label(ev: &ChurnEv) -> &'static str {
        match ev {
            ChurnEv::Fail(_) => "Fail",
            ChurnEv::Repair(_) => "Repair",
        }
    }
}

/// Runs the churn workload for `CHURN_EVENTS` events on queue backend
/// `Q`; returns a state fingerprint (events, final clock, failure count)
/// for the cross-arm identity assertion.
fn run_churn<Q: PendingEvents<ChurnEv> + Default>(seed: u64) -> (u64, SimTime, u64) {
    let factory = RngFactory::new(seed);
    let model = Churn {
        rng: factory.stream("churn"),
        mean_up: Dist::exponential_mean(1.0),
        mean_down: Dist::exponential_mean(0.05),
        failures: 0,
    };
    let mut sim = Simulation::with_queue(model, seed, Q::default());
    sim.reserve_events(COMPONENTS);
    let mut seed_rng = factory.stream("phases");
    for c in 0..COMPONENTS {
        let phase = SimDuration::from_secs(seed_rng.uniform());
        sim.schedule_in(phase, ChurnEv::Fail(c as u32));
    }
    sim.set_event_budget(CHURN_EVENTS);
    sim.run();
    (sim.events_executed(), sim.now(), sim.model().failures)
}

// --- mmc: M/M/4 station, tiny pending set -------------------------------

enum MmcEv {
    Arrival,
    Departure,
}

struct Mmc {
    interarrival: Dist,
    service: Dist,
    pool: ServerPool<()>,
    rng: wt_des::rng::Stream,
}

impl Model for Mmc {
    type Event = MmcEv;
    fn handle(&mut self, ev: MmcEv, ctx: &mut Ctx<'_, MmcEv>) {
        let now = ctx.now();
        match ev {
            MmcEv::Arrival => {
                let gap = SimDuration::from_secs(self.interarrival.sample(&mut self.rng));
                ctx.schedule_in(gap, MmcEv::Arrival);
                if self.pool.arrive(now, ()).is_some() {
                    let s = SimDuration::from_secs(self.service.sample(&mut self.rng));
                    ctx.schedule_in(s, MmcEv::Departure);
                }
            }
            MmcEv::Departure => {
                if self.pool.depart(now).is_some() {
                    let s = SimDuration::from_secs(self.service.sample(&mut self.rng));
                    ctx.schedule_in(s, MmcEv::Departure);
                }
            }
        }
    }
    fn label(ev: &MmcEv) -> &'static str {
        match ev {
            MmcEv::Arrival => "Arrival",
            MmcEv::Departure => "Departure",
        }
    }
}

fn run_mmc<Q: PendingEvents<MmcEv> + Default>(seed: u64) -> (u64, SimTime, u64) {
    let factory = RngFactory::new(seed);
    let model = Mmc {
        interarrival: Dist::exponential_mean(1.0),
        service: Dist::exponential_mean(3.6), // rho = 0.9 at c = 4
        pool: ServerPool::new(4, SimTime::ZERO),
        rng: factory.stream("mmc"),
    };
    let mut sim = Simulation::with_queue(model, seed, Q::default());
    sim.schedule_at(SimTime::ZERO, MmcEv::Arrival);
    sim.set_event_budget(MMC_EVENTS);
    sim.run();
    (
        sim.events_executed(),
        sim.now(),
        sim.model().pool.completions(),
    )
}

// --- avail scale: the availability engine at 100k / 1M components --------
//
// Engine-in-the-loop at data-center scale: dense storage nodes (63 disk
// slots each, so components = 64 × nodes), half a replica-set of objects
// per component, realistic failure rates. Unlike `churn`/`mmc`, these
// arms time a *real* `AvailabilityModel::run` end to end — placement and
// initial-timer setup included — because setup cost is part of what the
// SoA layout buys at this size. Each sample runs in a re-exec'd child
// process so peak RSS (Linux `VmHWM`) is attributable per arm.

/// Disk slots per node in the scale arms; components = nodes × (1 + 63).
const SCALE_DISKS_PER_NODE: usize = 63;
/// 15_625 × 64 = exactly 1M components.
const SCALE_1M_NODES: usize = 15_625;
/// 1_563 × 64 = 100_032 components (the "100k" arm).
const SCALE_100K_NODES: usize = 1_563;
const SCALE_SAMPLES: usize = 3;
const SCALE_HORIZON_YEARS: f64 = 0.1;
const SCALE_SEED: u64 = 1;

fn scale_model(nodes: usize, queue: QueueBackend) -> AvailabilityModel {
    const DAY: f64 = 86_400.0;
    const YEAR: f64 = 365.0 * DAY;
    AvailabilityModel {
        n_nodes: nodes,
        redundancy: RedundancyScheme::replication(3),
        placement: Placement::Random,
        // Half an object per component: 3 replicas land on ~1.5× the
        // disk-slot count, so a disk death destroys ~1.5 replicas.
        objects: (nodes * (1 + SCALE_DISKS_PER_NODE) / 2) as u64,
        object_bytes: 64 << 30,
        node_ttf: Dist::exponential_mean(20.0 * YEAR),
        node_replace: Dist::lognormal_mean_cv(4.0 * 3600.0, 1.0),
        rebuild: RebuildModel::Timed(Dist::exponential_mean(1800.0)),
        repair: RepairPolicy {
            max_parallel: 128,
            bandwidth_share: 0.5,
            detection_delay_s: 300.0,
        },
        switches: None,
        disks: Some(DiskFailureModel {
            per_node: SCALE_DISKS_PER_NODE,
            ttf: Dist::exponential_mean(2.0 * YEAR),
            replace: Dist::lognormal_mean_cv(4.0 * 3600.0, 1.0),
        }),
        queue,
        chaos: None,
    }
}

// --- partitioned scale: one 1M-component run sharded across partitions ---
//
// The single-run parallelism arms: the same 1M-node build-out (each node
// its own failure domain; the partitioned engine shards state by rack,
// so disks are not separate domains here) executed serially and across 4
// conservative-lookahead partitions on 4 threads. The fingerprint
// assertion pins the tentpole claim: partitioning is bitwise-invisible
// to results. Wall-clock speedup is whatever the host's cores allow —
// the JSON records the host's core count next to the numbers.

/// 15_625 racks × 64 nodes = exactly 1M failure domains.
const PART_RACKS_1M: usize = 15_625;
const PART_NODES_PER_RACK: usize = 64;
const PART_HORIZON_YEARS: f64 = 0.1;

fn part_model() -> PartitionedAvailability {
    const YEAR: f64 = 365.0 * 86_400.0;
    let nodes = PART_RACKS_1M * PART_NODES_PER_RACK;
    PartitionedAvailability {
        racks: PART_RACKS_1M,
        nodes_per_rack: PART_NODES_PER_RACK,
        replication: 3,
        objects: (nodes / 4) as u64,
        object_bytes: 64 << 30,
        node_ttf: Dist::exponential_mean(2.0 * YEAR),
        node_replace: Dist::lognormal_mean_cv(4.0 * 3600.0, 1.0),
        rebuild: RebuildModel::Timed(Dist::exponential_mean(1800.0)),
        repair: RepairPolicy {
            max_parallel: 128,
            bandwidth_share: 0.5,
            detection_delay_s: 300.0,
        },
        wire_latency_s: 1e-4,
        queue: QueueBackend::Heap,
        chaos: None,
    }
}

/// One end-to-end partitioned run; returns (events executed, result hash).
fn run_part(partitions: usize, threads: usize) -> (u64, u64) {
    let m = part_model();
    let horizon_s = SimDuration::from_years(PART_HORIZON_YEARS).as_secs();
    let (r, t) = m.run_observed(SCALE_SEED, horizon_s, partitions, threads);
    let json = serde_json::to_string(&r).expect("result serializes");
    (t.events, fnv1a(json.as_bytes()))
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One end-to-end scale run; returns (events executed, result hash).
fn run_scale(nodes: usize, queue: QueueBackend) -> (u64, u64) {
    let m = scale_model(nodes, queue);
    let r = m.run(SCALE_SEED, SimDuration::from_years(SCALE_HORIZON_YEARS));
    let json = serde_json::to_string(&r).expect("result serializes");
    (r.sim_events, fnv1a(json.as_bytes()))
}

/// Peak resident set of this process so far, in KiB (Linux `VmHWM`).
fn vmhwm_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|v| v.trim().trim_end_matches(" kB").trim().parse().ok())
        .unwrap_or(0)
}

/// Child-process entry: run one scale arm and report on stdout. The
/// parent re-execs itself with this env var so each sample's peak RSS
/// is the arm's own, not the max across every arm in one process.
const SCALE_CHILD_ENV: &str = "BENCH_KERNEL_SCALE_CHILD";

fn scale_child(spec: &str) -> ! {
    let t0 = Instant::now();
    let (events, fp) = if let Some(part) = spec.strip_prefix("part:") {
        let (partitions, threads) = part
            .split_once(',')
            .expect("child spec: part:<partitions>,<threads>");
        run_part(
            partitions.parse().expect("child partitions"),
            threads.parse().expect("child threads"),
        )
    } else {
        let (nodes, queue) = spec.split_once(',').expect("child spec: <nodes>,<queue>");
        let nodes: usize = nodes.parse().expect("child nodes");
        let queue = QueueBackend::parse(queue).expect("child queue");
        run_scale(nodes, queue)
    };
    let elapsed = t0.elapsed().as_secs_f64();
    println!(
        "events={events} elapsed={elapsed} vmhwm_kb={} fp={fp:x}",
        vmhwm_kb()
    );
    std::process::exit(0);
}

struct ScaleStats {
    events: u64,
    elapsed: Vec<f64>,
    peak_rss_kb: u64,
    fp: String,
}

fn run_scale_arm(nodes: usize, queue: QueueBackend) -> ScaleStats {
    run_child_arm(&format!("{nodes},{}", queue.as_str()))
}

fn run_part_arm(partitions: usize, threads: usize) -> ScaleStats {
    run_child_arm(&format!("part:{partitions},{threads}"))
}

fn run_child_arm(spec: &str) -> ScaleStats {
    let exe = std::env::current_exe().expect("current_exe");
    let mut stats = ScaleStats {
        events: 0,
        elapsed: Vec::with_capacity(SCALE_SAMPLES),
        peak_rss_kb: 0,
        fp: String::new(),
    };
    for _ in 0..SCALE_SAMPLES {
        let out = std::process::Command::new(&exe)
            .env(SCALE_CHILD_ENV, spec)
            .output()
            .expect("spawn scale child");
        assert!(out.status.success(), "scale child failed: {:?}", out.status);
        let text = String::from_utf8(out.stdout).expect("child stdout");
        let mut events = 0u64;
        let mut elapsed = 0.0f64;
        let mut rss = 0u64;
        let mut fp = String::new();
        for field in text.split_whitespace() {
            if let Some(v) = field.strip_prefix("events=") {
                events = v.parse().expect("events");
            } else if let Some(v) = field.strip_prefix("elapsed=") {
                elapsed = v.parse().expect("elapsed");
            } else if let Some(v) = field.strip_prefix("vmhwm_kb=") {
                rss = v.parse().expect("vmhwm");
            } else if let Some(v) = field.strip_prefix("fp=") {
                fp = v.to_string();
            }
        }
        assert!(
            events > 0 && elapsed > 0.0,
            "malformed child report: {text}"
        );
        if !stats.fp.is_empty() {
            assert_eq!(stats.fp, fp, "scale arm fingerprint drifted across samples");
        }
        stats.events = events;
        stats.elapsed.push(elapsed);
        stats.peak_rss_kb = stats.peak_rss_kb.max(rss);
        stats.fp = fp;
    }
    stats
}

// --- harness -------------------------------------------------------------

fn best(v: &[f64]) -> f64 {
    v.iter().cloned().fold(f64::INFINITY, f64::min)
}

fn median(v: &[f64]) -> f64 {
    let mut sorted = v.to_vec();
    sorted.sort_by(f64::total_cmp);
    (sorted[(sorted.len() - 1) / 2] + sorted[sorted.len() / 2]) / 2.0
}

/// Times `SAMPLES` runs of each arm, interleaved, returning per-arm
/// elapsed-seconds vectors.
fn time_arms(arms: &[Arm<'_>]) -> Vec<Vec<f64>> {
    let mut out: Vec<Vec<f64>> = arms.iter().map(|_| Vec::with_capacity(SAMPLES)).collect();
    for i in 0..SAMPLES {
        // Rotate the arm order each sample so drift hits all arms alike.
        for k in 0..arms.len() {
            let j = (k + i) % arms.len();
            let t0 = Instant::now();
            std::hint::black_box(arms[j].1());
            out[j].push(t0.elapsed().as_secs_f64());
        }
    }
    out
}

fn main() {
    // Re-exec'd child running one scale sample? Do that and nothing else.
    if let Ok(spec) = std::env::var(SCALE_CHILD_ENV) {
        scale_child(&spec);
    }
    // Warm-up + determinism gate: both backends must execute the full
    // budget AND land on the same fingerprint — same events, same final
    // clock, same model state — before anything is timed. This is the
    // (time, seq) contract observed end to end.
    let churn_heap = run_churn::<EventQueue<ChurnEv>>(1);
    let churn_cal = run_churn::<CalendarQueue<ChurnEv>>(1);
    assert_eq!(churn_heap.0, CHURN_EVENTS, "churn drained early");
    assert_eq!(churn_heap, churn_cal, "backends diverged on churn");
    let mmc_heap = run_mmc::<EventQueue<MmcEv>>(1);
    let mmc_cal = run_mmc::<CalendarQueue<MmcEv>>(1);
    assert_eq!(mmc_heap.0, MMC_EVENTS, "mmc drained early");
    assert_eq!(mmc_heap, mmc_cal, "backends diverged on mmc");

    println!(
        "kernel_engine: {COMPONENTS} components, {CHURN_EVENTS} churn + {MMC_EVENTS} mmc events/sample, {SAMPLES} samples"
    );

    let churn_arms: Vec<Arm<'_>> = vec![
        ("churn/heap", &|| run_churn::<EventQueue<ChurnEv>>(1)),
        ("churn/calendar", &|| run_churn::<CalendarQueue<ChurnEv>>(1)),
    ];
    let churn_times = time_arms(&churn_arms);
    let mmc_arms: Vec<Arm<'_>> = vec![
        ("mmc/heap", &|| run_mmc::<EventQueue<MmcEv>>(1)),
        ("mmc/calendar", &|| run_mmc::<CalendarQueue<MmcEv>>(1)),
    ];
    let mmc_times = time_arms(&mmc_arms);

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"kernel_engine\",");
    let _ = writeln!(
        json,
        "  \"metric\": \"full Simulation runs (engine loop + handlers + RNG) per queue backend; identical event streams asserted before timing\","
    );
    for (arms, times, events) in [
        (&churn_arms, &churn_times, CHURN_EVENTS),
        (&mmc_arms, &mmc_times, MMC_EVENTS),
    ] {
        for (k, (name, _)) in arms.iter().enumerate() {
            let b = events as f64 / best(&times[k]);
            let m = events as f64 / median(&times[k]);
            println!("{name}: best {b:.0} ev/s, median {m:.0} ev/s");
            let slug = name.replace('/', "_");
            let _ = writeln!(json, "  \"{slug}_events_per_s_best\": {b:.0},");
            let _ = writeln!(json, "  \"{slug}_events_per_s_median\": {m:.0},");
        }
    }
    // Availability engine at scale, one re-exec'd child per sample.
    println!();
    println!(
        "avail scale arms: {} samples each, horizon {SCALE_HORIZON_YEARS}y, \
         64 components/node ({SCALE_DISKS_PER_NODE} disks + the node)",
        SCALE_SAMPLES
    );
    for (label, nodes) in [("100k", SCALE_100K_NODES), ("1m", SCALE_1M_NODES)] {
        let heap = run_scale_arm(nodes, QueueBackend::Heap);
        let cal = run_scale_arm(nodes, QueueBackend::Calendar);
        assert_eq!(
            heap.fp, cal.fp,
            "avail/{label}: backends diverged (events {} vs {})",
            heap.events, cal.events
        );
        for (qname, s) in [("heap", &heap), ("calendar", &cal)] {
            let b = s.events as f64 / best(&s.elapsed);
            let m = s.events as f64 / median(&s.elapsed);
            let rss_mb = s.peak_rss_kb as f64 / 1024.0;
            println!(
                "avail_{label}/{qname}: {} events, best {b:.0} ev/s, median {m:.0} ev/s, \
                 peak RSS {rss_mb:.0} MiB",
                s.events
            );
            let _ = writeln!(json, "  \"avail_{label}_{qname}_events\": {},", s.events);
            let _ = writeln!(
                json,
                "  \"avail_{label}_{qname}_events_per_s_best\": {b:.0},"
            );
            let _ = writeln!(
                json,
                "  \"avail_{label}_{qname}_events_per_s_median\": {m:.0},"
            );
            let _ = writeln!(
                json,
                "  \"avail_{label}_{qname}_peak_rss_mb\": {rss_mb:.0},"
            );
        }
        // Pre-refactor (AoS `Vec<Vec<_>>` layout) numbers, measured on the
        // same host with identical arm code before the SoA refactor landed
        // — recorded so the JSON documents the layout win.
        let env_key = format!("BENCH_KERNEL_PRE_SOA_{}", label.to_uppercase());
        if let Ok(pre) = std::env::var(&env_key) {
            // value format: "<events_per_s_best>,<peak_rss_mb>"
            if let Some((evs, rss)) = pre.split_once(',') {
                let _ = writeln!(
                    json,
                    "  \"avail_{label}_pre_soa_events_per_s_best\": {evs},"
                );
                let _ = writeln!(json, "  \"avail_{label}_pre_soa_peak_rss_mb\": {rss},");
                let post = heap.events as f64 / best(&heap.elapsed);
                if let Ok(pre_evs) = evs.parse::<f64>() {
                    let ratio = post / pre_evs;
                    println!("avail_{label}: {ratio:.2}x ev/s vs pre-SoA layout");
                    let _ = writeln!(json, "  \"avail_{label}_soa_speedup_best\": {ratio:.2},");
                }
            }
        }
    }

    // Partitioned single-run arms: the same 1M-component regime, but the
    // parallelism is *inside* one run. Fingerprints across arms pin the
    // tentpole claim (partitioning bitwise-invisible to results) before
    // any timing is reported.
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!();
    println!(
        "partitioned single-run arms: 1M failure domains \
         ({PART_RACKS_1M} racks x {PART_NODES_PER_RACK} nodes), \
         {SCALE_SAMPLES} samples each, host cores: {host_cpus}"
    );
    let part_serial = run_part_arm(1, 1);
    let part_p4 = run_part_arm(4, 4);
    assert_eq!(
        part_serial.fp, part_p4.fp,
        "partitioned run diverged from the serial oracle"
    );
    assert_eq!(part_serial.events, part_p4.events, "event totals diverged");
    for (name, s) in [("part_1m_serial", &part_serial), ("part_1m_p4t4", &part_p4)] {
        let b = s.events as f64 / best(&s.elapsed);
        let m = s.events as f64 / median(&s.elapsed);
        let rss_mb = s.peak_rss_kb as f64 / 1024.0;
        println!(
            "{name}: {} events, best {b:.0} ev/s, median {m:.0} ev/s, \
             peak RSS {rss_mb:.0} MiB",
            s.events
        );
        let _ = writeln!(json, "  \"{name}_events\": {},", s.events);
        let _ = writeln!(json, "  \"{name}_events_per_s_best\": {b:.0},");
        let _ = writeln!(json, "  \"{name}_events_per_s_median\": {m:.0},");
        let _ = writeln!(json, "  \"{name}_peak_rss_mb\": {rss_mb:.0},");
    }
    let part_speedup = best(&part_serial.elapsed) / best(&part_p4.elapsed);
    println!(
        "part_1m: 4-partition/serial single-run speedup {part_speedup:.2}x on {host_cpus} core(s)"
    );
    let _ = writeln!(json, "  \"part_1m_p4t4_speedup_best\": {part_speedup:.2},");
    let _ = writeln!(json, "  \"part_1m_host_cpus\": {host_cpus},");
    let _ = writeln!(
        json,
        "  \"part_1m_caveat\": \"4-thread arm measured on a {host_cpus}-core host; speedup reflects available cores, results asserted identical to the serial oracle\","
    );

    let churn_speedup = best(&churn_times[0]) / best(&churn_times[1]);
    let mmc_ratio = best(&mmc_times[0]) / best(&mmc_times[1]);
    println!();
    println!("churn: calendar/heap speedup {churn_speedup:.2}x (best-sample)");
    println!(
        "mmc:   calendar/heap ratio   {mmc_ratio:.2}x (small pending set; heap expected to hold)"
    );
    let _ = writeln!(
        json,
        "  \"churn_calendar_speedup_best\": {churn_speedup:.2},"
    );
    let _ = writeln!(json, "  \"mmc_calendar_ratio_best\": {mmc_ratio:.2},");
    if let Ok(pre) = std::env::var("BENCH_KERNEL_PRE_PR_CHURN_HEAP") {
        // The pre-refactor heap loop's ev/s, measured on the same host
        // before the backend abstraction landed — recorded so the JSON
        // documents the no-regression claim.
        let _ = writeln!(json, "  \"churn_heap_pre_pr_events_per_s_best\": {pre},");
    }
    let _ = writeln!(json, "  \"samples\": {SAMPLES}");
    json.push_str("}\n");

    let out = std::env::var("BENCH_KERNEL_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernel.json").to_string()
    });
    match std::fs::write(&out, &json) {
        Ok(()) => println!("written to {out}"),
        Err(e) => eprintln!("could not write {out}: {e}"),
    }
}
