//! Parameter estimation: the paper's §4.4 "operational log data → models"
//! pipeline.
//!
//! Given observed durations (times between disk replacements, repair times,
//! request latencies…), these routines fit candidate families and
//! [`fit_best`] selects among them by Kolmogorov–Smirnov distance. The
//! estimators are maximum likelihood where closed-form or a stable
//! one-dimensional Newton iteration exists (exponential, lognormal, normal,
//! Weibull, gamma), method-of-moments as a fallback.

use crate::dist::Dist;
use crate::ks::{ks_test, KsResult};
use crate::special::digamma;

fn mean_of(data: &[f64]) -> f64 {
    data.iter().sum::<f64>() / data.len() as f64
}

fn variance_of(data: &[f64]) -> f64 {
    let m = mean_of(data);
    data.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (data.len() - 1).max(1) as f64
}

fn check_positive(data: &[f64], what: &str) {
    assert!(data.len() >= 2, "{what}: need at least 2 observations");
    assert!(
        data.iter().all(|&x| x > 0.0 && x.is_finite()),
        "{what}: data must be positive and finite"
    );
}

/// MLE for the exponential: rate = 1 / mean.
pub fn fit_exponential(data: &[f64]) -> Dist {
    check_positive(data, "fit_exponential");
    Dist::exponential(1.0 / mean_of(data))
}

/// MLE for the lognormal: moments of `ln x`.
pub fn fit_lognormal(data: &[f64]) -> Dist {
    check_positive(data, "fit_lognormal");
    let logs: Vec<f64> = data.iter().map(|x| x.ln()).collect();
    let mu = mean_of(&logs);
    let sigma2 = logs.iter().map(|l| (l - mu) * (l - mu)).sum::<f64>() / logs.len() as f64;
    Dist::lognormal(mu, sigma2.sqrt().max(1e-9))
}

/// MLE for the normal.
pub fn fit_normal(data: &[f64]) -> Dist {
    assert!(data.len() >= 2, "fit_normal: need at least 2 observations");
    Dist::normal(mean_of(data), variance_of(data).sqrt().max(1e-9))
}

/// Weibull MLE: Newton–Raphson on the profile likelihood for the shape `k`
/// (the standard one-dimensional reduction), then the scale in closed form.
///
/// Solves `g(k) = Σ xᵏ ln x / Σ xᵏ − 1/k − mean(ln x) = 0`, which is
/// monotone in `k`; converges from the Menon/moment starting point in a
/// handful of iterations for any real data set.
pub fn fit_weibull(data: &[f64]) -> Dist {
    check_positive(data, "fit_weibull");
    let n = data.len() as f64;
    let logs: Vec<f64> = data.iter().map(|x| x.ln()).collect();
    let mean_log = mean_of(&logs);

    // Starting point: moment-style estimate from the variance of ln x
    // (for Weibull, Var[ln X] = π²/(6k²)).
    let var_log = logs
        .iter()
        .map(|l| (l - mean_log) * (l - mean_log))
        .sum::<f64>()
        / n;
    let mut k = if var_log > 1e-12 {
        (std::f64::consts::PI / (6.0 * var_log).sqrt()).max(0.05)
    } else {
        1.0
    };

    for _ in 0..100 {
        // Work with scaled powers to avoid overflow on large data values.
        let max_x = data.iter().cloned().fold(0.0f64, f64::max);
        let mut s0 = 0.0; // Σ (x/max)ᵏ
        let mut s1 = 0.0; // Σ (x/max)ᵏ ln x
        let mut s2 = 0.0; // Σ (x/max)ᵏ (ln x)²
        for (&x, &lx) in data.iter().zip(&logs) {
            let p = (x / max_x).powf(k);
            s0 += p;
            s1 += p * lx;
            s2 += p * lx * lx;
        }
        let g = s1 / s0 - 1.0 / k - mean_log;
        // g'(k) = (s2·s0 − s1²)/s0² + 1/k²
        let gp = (s2 * s0 - s1 * s1) / (s0 * s0) + 1.0 / (k * k);
        let step = g / gp;
        let next = (k - step).clamp(k * 0.2, k * 5.0).max(1e-4);
        if (next - k).abs() < 1e-10 * k {
            k = next;
            break;
        }
        k = next;
    }

    let scale = (data.iter().map(|x| x.powf(k)).sum::<f64>() / n).powf(1.0 / k);
    Dist::weibull(k, scale)
}

/// Gamma fit: method-of-moments start, then a few Newton steps on the MLE
/// equation `ln k − ψ(k) = ln(mean) − mean(ln x)`.
pub fn fit_gamma(data: &[f64]) -> Dist {
    check_positive(data, "fit_gamma");
    let m = mean_of(data);
    let mean_log = mean_of(&data.iter().map(|x| x.ln()).collect::<Vec<_>>());
    let s = (m.ln() - mean_log).max(1e-12);

    // Minka's closed-form initialization.
    let mut k = (3.0 - s + ((s - 3.0) * (s - 3.0) + 24.0 * s).sqrt()) / (12.0 * s);
    for _ in 0..50 {
        let f = k.ln() - digamma(k) - s;
        // d/dk (ln k − ψ(k)) = 1/k − ψ'(k); approximate ψ' with the series
        // trigamma ≈ 1/k + 1/(2k²) + 1/(6k³).
        let trigamma = 1.0 / k + 1.0 / (2.0 * k * k) + 1.0 / (6.0 * k * k * k);
        let fp = 1.0 / k - trigamma;
        let next = (k - f / fp).max(1e-4);
        if (next - k).abs() < 1e-12 * k {
            k = next;
            break;
        }
        k = next;
    }
    Dist::gamma(k, m / k)
}

/// The empirical distribution itself (no parametric assumption).
pub fn fit_empirical(data: &[f64]) -> Dist {
    Dist::empirical(data.to_vec())
}

/// One fitted candidate with its goodness of fit.
#[derive(Debug, Clone)]
pub struct FitReport {
    /// Family name, e.g. `"weibull"`.
    pub family: &'static str,
    /// The fitted distribution.
    pub dist: Dist,
    /// KS test of the data against the fitted distribution.
    pub ks: KsResult,
}

/// Fits every parametric candidate family and returns them ranked by KS
/// statistic (best first). The caller decides whether the best parametric
/// fit is adequate (`ks.accepts(alpha)`) or whether to fall back to
/// [`fit_empirical`].
///
/// This is the §4.4 transformation "convert log data into meaningful models
/// (probability distributions) that can be used by the wind tunnel".
pub fn fit_best(data: &[f64]) -> Vec<FitReport> {
    check_positive(data, "fit_best");
    let candidates: Vec<(&'static str, Dist)> = vec![
        ("exponential", fit_exponential(data)),
        ("weibull", fit_weibull(data)),
        ("gamma", fit_gamma(data)),
        ("lognormal", fit_lognormal(data)),
    ];
    let mut reports: Vec<FitReport> = candidates
        .into_iter()
        .map(|(family, dist)| {
            let ks = ks_test(data, &dist);
            FitReport { family, dist, ks }
        })
        .collect();
    reports.sort_by(|a, b| {
        a.ks.statistic
            .partial_cmp(&b.ks.statistic)
            .expect("KS statistic is finite")
    });
    reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use wt_des::rng::Stream;

    fn draw(d: &Dist, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = Stream::from_seed(seed);
        (0..n).map(|_| d.sample(&mut rng)).collect()
    }

    #[test]
    fn exponential_recovers_rate() {
        let data = draw(&Dist::exponential(0.25), 20_000, 1);
        let fitted = fit_exponential(&data);
        if let Dist::Exponential { rate } = fitted {
            assert!((rate - 0.25).abs() / 0.25 < 0.03, "rate = {rate}");
        } else {
            panic!("wrong family");
        }
    }

    #[test]
    fn lognormal_recovers_params() {
        let truth = Dist::lognormal(2.0, 0.7);
        let data = draw(&truth, 20_000, 2);
        if let Dist::LogNormal { mu, sigma } = fit_lognormal(&data) {
            assert!((mu - 2.0).abs() < 0.03, "mu = {mu}");
            assert!((sigma - 0.7).abs() < 0.03, "sigma = {sigma}");
        } else {
            panic!("wrong family");
        }
    }

    #[test]
    fn weibull_recovers_params_decreasing_hazard() {
        // The Schroeder–Gibson regime: shape < 1.
        let truth = Dist::weibull(0.7, 1000.0);
        let data = draw(&truth, 20_000, 3);
        if let Dist::Weibull { shape, scale } = fit_weibull(&data) {
            assert!((shape - 0.7).abs() < 0.03, "shape = {shape}");
            assert!((scale - 1000.0).abs() / 1000.0 < 0.05, "scale = {scale}");
        } else {
            panic!("wrong family");
        }
    }

    #[test]
    fn weibull_recovers_params_increasing_hazard() {
        let truth = Dist::weibull(2.5, 10.0);
        let data = draw(&truth, 20_000, 4);
        if let Dist::Weibull { shape, scale } = fit_weibull(&data) {
            assert!((shape - 2.5).abs() < 0.08, "shape = {shape}");
            assert!((scale - 10.0).abs() / 10.0 < 0.03, "scale = {scale}");
        } else {
            panic!("wrong family");
        }
    }

    #[test]
    fn gamma_recovers_params() {
        let truth = Dist::gamma(3.0, 2.0);
        let data = draw(&truth, 20_000, 5);
        if let Dist::Gamma { shape, scale } = fit_gamma(&data) {
            assert!((shape - 3.0).abs() < 0.15, "shape = {shape}");
            assert!((scale - 2.0).abs() < 0.15, "scale = {scale}");
        } else {
            panic!("wrong family");
        }
    }

    #[test]
    fn fit_best_selects_true_family() {
        // Weibull data with shape far from 1 should rank weibull above
        // exponential.
        let data = draw(&Dist::weibull(3.0, 5.0), 5_000, 6);
        let reports = fit_best(&data);
        assert_eq!(reports[0].family, "weibull");
        assert!(reports[0].ks.accepts(0.01));
        // Exponential must be a clearly worse fit.
        let exp_report = reports.iter().find(|r| r.family == "exponential").unwrap();
        assert!(exp_report.ks.statistic > 3.0 * reports[0].ks.statistic);
    }

    #[test]
    fn fit_best_on_lognormal_repair_times() {
        // The paper's repair-time example [16]: lognormal should win.
        let data = draw(&Dist::lognormal(1.5, 1.1), 5_000, 7);
        let reports = fit_best(&data);
        assert_eq!(reports[0].family, "lognormal");
        assert!(reports[0].ks.accepts(0.01));
    }

    #[test]
    fn exponential_data_fits_multiple_families() {
        // Exponential is a special case of Weibull (k=1) and Gamma (k=1):
        // all three should accept.
        let data = draw(&Dist::exponential(1.0), 5_000, 8);
        let reports = fit_best(&data);
        let accepted: Vec<_> = reports
            .iter()
            .filter(|r| r.ks.accepts(0.01))
            .map(|r| r.family)
            .collect();
        assert!(accepted.contains(&"exponential"), "accepted: {accepted:?}");
        assert!(accepted.contains(&"weibull"));
    }

    #[test]
    fn fit_empirical_reproduces_data() {
        let data = vec![1.0, 2.0, 3.0];
        let d = fit_empirical(&data);
        assert_eq!(d.cdf(2.0), 2.0 / 3.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_data() {
        let _ = fit_weibull(&[1.0, 0.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rejects_tiny_data() {
        let _ = fit_exponential(&[1.0]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use wt_des::rng::Stream;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Whatever the true Weibull parameters, the fitter recovers a
        /// distribution whose mean is close to the sample mean.
        #[test]
        fn weibull_fit_preserves_mean(shape in 0.4f64..4.0, scale in 0.5f64..100.0, seed in any::<u64>()) {
            let truth = Dist::weibull(shape, scale);
            let mut rng = Stream::from_seed(seed);
            let data: Vec<f64> = (0..2000).map(|_| truth.sample(&mut rng)).collect();
            let fitted = fit_weibull(&data);
            let sample_mean = data.iter().sum::<f64>() / data.len() as f64;
            prop_assert!((fitted.mean() - sample_mean).abs() / sample_mean < 0.15,
                "fitted mean {} vs sample mean {}", fitted.mean(), sample_mean);
        }

        /// fit_best never panics and always returns all four families.
        #[test]
        fn fit_best_total(seed in any::<u64>()) {
            let truth = Dist::gamma(2.0, 3.0);
            let mut rng = Stream::from_seed(seed);
            let data: Vec<f64> = (0..200).map(|_| truth.sample(&mut rng)).collect();
            let reports = fit_best(&data);
            prop_assert_eq!(reports.len(), 4);
            // Ranked by KS statistic.
            for w in reports.windows(2) {
                prop_assert!(w[0].ks.statistic <= w[1].ks.statistic);
            }
        }
    }
}
