//! The distribution algebra.
//!
//! [`Dist`] is an enum rather than a trait object so configurations can be
//! serialized (the wind tunnel's result store persists the full scenario,
//! distributions included), compared, and swept over declaratively.

use crate::special::{gamma_p, ln_gamma, norm_cdf, norm_quantile};
use serde::{Deserialize, Serialize};
use wt_des::rng::Stream;

/// A univariate probability distribution over (mostly non-negative) reals.
///
/// All constructors validate parameters; sampling and cdf are exact
/// (inverse-transform or standard exact samplers, no discretization).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Dist {
    /// A point mass at `value`.
    Deterministic { value: f64 },
    /// Uniform on `[lo, hi)`.
    Uniform { lo: f64, hi: f64 },
    /// Exponential with rate `rate` (mean `1/rate`).
    Exponential { rate: f64 },
    /// Weibull with shape `k` and scale `lambda`. Shape < 1 gives the
    /// decreasing hazard observed for disk infant mortality.
    Weibull { shape: f64, scale: f64 },
    /// Gamma with shape `k` and scale `theta` (mean `k·theta`).
    Gamma { shape: f64, scale: f64 },
    /// Lognormal: `exp(N(mu, sigma²))`.
    LogNormal { mu: f64, sigma: f64 },
    /// Normal (used for e.g. performance jitter; can go negative).
    Normal { mean: f64, std_dev: f64 },
    /// Pareto Type I with minimum `xm` and tail index `alpha`.
    Pareto { xm: f64, alpha: f64 },
    /// Erlang: sum of `k` exponentials of rate `rate`.
    Erlang { k: u32, rate: f64 },
    /// The empirical distribution of a data set (sampling draws uniformly
    /// from the recorded values; cdf is the ECDF). `samples` is kept sorted.
    Empirical { samples: Vec<f64> },
    /// A finite mixture. Weights need not be normalized.
    Mixture { components: Vec<(f64, Dist)> },
    /// `offset + X` for an inner distribution — e.g. a minimum repair time
    /// plus a lognormal tail.
    Shifted { offset: f64, inner: Box<Dist> },
}

impl Dist {
    /// Point mass.
    pub fn deterministic(value: f64) -> Dist {
        assert!(value.is_finite(), "deterministic value must be finite");
        Dist::Deterministic { value }
    }

    /// Uniform on `[lo, hi)`.
    pub fn uniform(lo: f64, hi: f64) -> Dist {
        assert!(lo < hi, "uniform requires lo < hi ({lo} >= {hi})");
        Dist::Uniform { lo, hi }
    }

    /// Exponential by rate.
    pub fn exponential(rate: f64) -> Dist {
        assert!(rate > 0.0 && rate.is_finite(), "exponential rate > 0");
        Dist::Exponential { rate }
    }

    /// Exponential by mean.
    pub fn exponential_mean(mean: f64) -> Dist {
        Self::exponential(1.0 / mean)
    }

    /// Weibull by shape and scale.
    pub fn weibull(shape: f64, scale: f64) -> Dist {
        assert!(shape > 0.0 && scale > 0.0, "weibull params > 0");
        Dist::Weibull { shape, scale }
    }

    /// Weibull with a given shape, scaled so the mean is `mean`.
    pub fn weibull_mean(shape: f64, mean: f64) -> Dist {
        assert!(shape > 0.0 && mean > 0.0);
        let scale = mean / (ln_gamma(1.0 + 1.0 / shape)).exp();
        Dist::Weibull { shape, scale }
    }

    /// Gamma by shape and scale.
    pub fn gamma(shape: f64, scale: f64) -> Dist {
        assert!(shape > 0.0 && scale > 0.0, "gamma params > 0");
        Dist::Gamma { shape, scale }
    }

    /// Lognormal by log-space parameters.
    pub fn lognormal(mu: f64, sigma: f64) -> Dist {
        assert!(sigma > 0.0, "lognormal sigma > 0");
        Dist::LogNormal { mu, sigma }
    }

    /// Lognormal with the given real-space mean and coefficient of
    /// variation (std/mean) — the natural way to encode "repairs take ~4h
    /// with heavy spread".
    pub fn lognormal_mean_cv(mean: f64, cv: f64) -> Dist {
        assert!(mean > 0.0 && cv > 0.0);
        let sigma2 = (1.0 + cv * cv).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        Dist::LogNormal {
            mu,
            sigma: sigma2.sqrt(),
        }
    }

    /// Normal by mean and standard deviation.
    pub fn normal(mean: f64, std_dev: f64) -> Dist {
        assert!(std_dev > 0.0, "normal std_dev > 0");
        Dist::Normal { mean, std_dev }
    }

    /// Pareto by minimum and tail index.
    pub fn pareto(xm: f64, alpha: f64) -> Dist {
        assert!(xm > 0.0 && alpha > 0.0, "pareto params > 0");
        Dist::Pareto { xm, alpha }
    }

    /// Erlang-k by phase count and per-phase rate.
    pub fn erlang(k: u32, rate: f64) -> Dist {
        assert!(k > 0 && rate > 0.0, "erlang k > 0, rate > 0");
        Dist::Erlang { k, rate }
    }

    /// Empirical distribution of `samples` (must be non-empty).
    pub fn empirical(mut samples: Vec<f64>) -> Dist {
        assert!(!samples.is_empty(), "empirical needs data");
        assert!(
            samples.iter().all(|x| x.is_finite()),
            "empirical data finite"
        );
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Dist::Empirical { samples }
    }

    /// Finite mixture of weighted components.
    pub fn mixture(components: Vec<(f64, Dist)>) -> Dist {
        assert!(!components.is_empty(), "mixture needs components");
        assert!(
            components.iter().all(|(w, _)| *w > 0.0),
            "mixture weights > 0"
        );
        Dist::Mixture { components }
    }

    /// `offset + inner`.
    pub fn shifted(offset: f64, inner: Dist) -> Dist {
        assert!(offset.is_finite());
        Dist::Shifted {
            offset,
            inner: Box::new(inner),
        }
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut Stream) -> f64 {
        match self {
            Dist::Deterministic { value } => *value,
            Dist::Uniform { lo, hi } => lo + (hi - lo) * rng.uniform(),
            Dist::Exponential { rate } => -rng.uniform_open().ln() / rate,
            Dist::Weibull { shape, scale } => scale * (-rng.uniform_open().ln()).powf(1.0 / shape),
            Dist::Gamma { shape, scale } => sample_gamma(*shape, rng) * scale,
            Dist::LogNormal { mu, sigma } => (mu + sigma * sample_std_normal(rng)).exp(),
            Dist::Normal { mean, std_dev } => mean + std_dev * sample_std_normal(rng),
            Dist::Pareto { xm, alpha } => xm / rng.uniform_open().powf(1.0 / alpha),
            Dist::Erlang { k, rate } => {
                // Product of uniforms: sum of k exponentials.
                let mut prod = 1.0f64;
                for _ in 0..*k {
                    prod *= rng.uniform_open();
                }
                -prod.ln() / rate
            }
            Dist::Empirical { samples } => samples[rng.index(samples.len())],
            Dist::Mixture { components } => {
                let total: f64 = components.iter().map(|(w, _)| w).sum();
                let mut u = rng.uniform() * total;
                for (w, d) in components {
                    if u < *w {
                        return d.sample(rng);
                    }
                    u -= w;
                }
                components.last().expect("non-empty").1.sample(rng)
            }
            Dist::Shifted { offset, inner } => offset + inner.sample(rng),
        }
    }

    /// The distribution mean (may be `+inf`, e.g. Pareto with α ≤ 1).
    pub fn mean(&self) -> f64 {
        match self {
            Dist::Deterministic { value } => *value,
            Dist::Uniform { lo, hi } => (lo + hi) / 2.0,
            Dist::Exponential { rate } => 1.0 / rate,
            Dist::Weibull { shape, scale } => scale * ln_gamma(1.0 + 1.0 / shape).exp(),
            Dist::Gamma { shape, scale } => shape * scale,
            Dist::LogNormal { mu, sigma } => (mu + sigma * sigma / 2.0).exp(),
            Dist::Normal { mean, .. } => *mean,
            Dist::Pareto { xm, alpha } => {
                if *alpha > 1.0 {
                    alpha * xm / (alpha - 1.0)
                } else {
                    f64::INFINITY
                }
            }
            Dist::Erlang { k, rate } => f64::from(*k) / rate,
            Dist::Empirical { samples } => samples.iter().sum::<f64>() / samples.len() as f64,
            Dist::Mixture { components } => {
                let total: f64 = components.iter().map(|(w, _)| w).sum();
                components.iter().map(|(w, d)| w / total * d.mean()).sum()
            }
            Dist::Shifted { offset, inner } => offset + inner.mean(),
        }
    }

    /// The distribution variance (may be `+inf`).
    pub fn variance(&self) -> f64 {
        match self {
            Dist::Deterministic { .. } => 0.0,
            Dist::Uniform { lo, hi } => (hi - lo) * (hi - lo) / 12.0,
            Dist::Exponential { rate } => 1.0 / (rate * rate),
            Dist::Weibull { shape, scale } => {
                let g1 = ln_gamma(1.0 + 1.0 / shape).exp();
                let g2 = ln_gamma(1.0 + 2.0 / shape).exp();
                scale * scale * (g2 - g1 * g1)
            }
            Dist::Gamma { shape, scale } => shape * scale * scale,
            Dist::LogNormal { mu, sigma } => {
                let s2 = sigma * sigma;
                (s2.exp() - 1.0) * (2.0 * mu + s2).exp()
            }
            Dist::Normal { std_dev, .. } => std_dev * std_dev,
            Dist::Pareto { xm, alpha } => {
                if *alpha > 2.0 {
                    xm * xm * alpha / ((alpha - 1.0) * (alpha - 1.0) * (alpha - 2.0))
                } else {
                    f64::INFINITY
                }
            }
            Dist::Erlang { k, rate } => f64::from(*k) / (rate * rate),
            Dist::Empirical { samples } => {
                let m = self.mean();
                samples.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / samples.len() as f64
            }
            Dist::Mixture { components } => {
                // Var = E[X²] − E[X]²; E[X²] per component = var + mean².
                let total: f64 = components.iter().map(|(w, _)| w).sum();
                let ex2: f64 = components
                    .iter()
                    .map(|(w, d)| {
                        let m = d.mean();
                        w / total * (d.variance() + m * m)
                    })
                    .sum();
                let m = self.mean();
                ex2 - m * m
            }
            Dist::Shifted { inner, .. } => inner.variance(),
        }
    }

    /// Standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Cumulative distribution function `P(X ≤ x)`.
    pub fn cdf(&self, x: f64) -> f64 {
        match self {
            Dist::Deterministic { value } => {
                if x >= *value {
                    1.0
                } else {
                    0.0
                }
            }
            Dist::Uniform { lo, hi } => ((x - lo) / (hi - lo)).clamp(0.0, 1.0),
            Dist::Exponential { rate } => {
                if x <= 0.0 {
                    0.0
                } else {
                    1.0 - (-rate * x).exp()
                }
            }
            Dist::Weibull { shape, scale } => {
                if x <= 0.0 {
                    0.0
                } else {
                    1.0 - (-(x / scale).powf(*shape)).exp()
                }
            }
            Dist::Gamma { shape, scale } => {
                if x <= 0.0 {
                    0.0
                } else {
                    gamma_p(*shape, x / scale)
                }
            }
            Dist::LogNormal { mu, sigma } => {
                if x <= 0.0 {
                    0.0
                } else {
                    norm_cdf((x.ln() - mu) / sigma)
                }
            }
            Dist::Normal { mean, std_dev } => norm_cdf((x - mean) / std_dev),
            Dist::Pareto { xm, alpha } => {
                if x < *xm {
                    0.0
                } else {
                    1.0 - (xm / x).powf(*alpha)
                }
            }
            Dist::Erlang { k, rate } => {
                if x <= 0.0 {
                    0.0
                } else {
                    gamma_p(f64::from(*k), rate * x)
                }
            }
            Dist::Empirical { samples } => {
                let idx = samples.partition_point(|&s| s <= x);
                idx as f64 / samples.len() as f64
            }
            Dist::Mixture { components } => {
                let total: f64 = components.iter().map(|(w, _)| w).sum();
                components.iter().map(|(w, d)| w / total * d.cdf(x)).sum()
            }
            Dist::Shifted { offset, inner } => inner.cdf(x - offset),
        }
    }

    /// Quantile function (inverse cdf). Closed-form where available,
    /// otherwise bisection on the cdf to 1e-10 relative precision.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile domain: {q}");
        match self {
            Dist::Deterministic { value } => *value,
            Dist::Uniform { lo, hi } => lo + (hi - lo) * q,
            Dist::Exponential { rate } => -(1.0 - q).ln() / rate,
            Dist::Weibull { shape, scale } => scale * (-(1.0 - q).ln()).powf(1.0 / shape),
            Dist::LogNormal { mu, sigma } => {
                if q == 0.0 {
                    0.0
                } else {
                    (mu + sigma * norm_quantile(q)).exp()
                }
            }
            Dist::Normal { mean, std_dev } => mean + std_dev * norm_quantile(q),
            Dist::Pareto { xm, alpha } => xm / (1.0 - q).powf(1.0 / alpha),
            Dist::Empirical { samples } => {
                if q == 0.0 {
                    return samples[0];
                }
                let rank = ((q * samples.len() as f64).ceil() as usize).max(1);
                samples[rank - 1]
            }
            _ => self.quantile_bisect(q),
        }
    }

    fn quantile_bisect(&self, q: f64) -> f64 {
        if q == 0.0 {
            return 0.0;
        }
        // Find an upper bracket.
        let mut hi = (self.mean() + 1.0).max(1.0);
        let mut iter = 0;
        while self.cdf(hi) < q {
            hi *= 2.0;
            iter += 1;
            assert!(iter < 200, "quantile bracket search diverged");
        }
        let mut lo = 0.0f64;
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < q {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi - lo <= 1e-12 * (1.0 + hi.abs()) {
                break;
            }
        }
        0.5 * (lo + hi)
    }

    /// Survival function `P(X > x) = 1 − F(x)`.
    pub fn survival(&self, x: f64) -> f64 {
        1.0 - self.cdf(x)
    }

    /// Hazard rate `h(x) = f(x)/S(x)`, estimated by central differencing
    /// of the cdf (exact closed forms exist for some families but the
    /// numeric version is uniform and accurate to ~1e-6 relative).
    ///
    /// The hazard *shape* is the §2.2 argument in one number: exponential
    /// is flat, Weibull k<1 decreases (infant mortality), k>1 increases
    /// (wear-out).
    pub fn hazard(&self, x: f64) -> f64 {
        assert!(x > 0.0, "hazard defined on x > 0");
        let s = self.survival(x);
        if s <= 0.0 {
            return f64::INFINITY;
        }
        let h = (x * 1e-5).max(1e-12);
        let pdf = (self.cdf(x + h) - self.cdf(x - h)) / (2.0 * h);
        (pdf / s).max(0.0)
    }

    /// Mean residual life `E[X − x | X > x]`, by numeric integration of
    /// the survival function (adaptive upper cut at the 1−1e-9 quantile).
    pub fn mean_residual_life(&self, x: f64) -> f64 {
        let s_x = self.survival(x);
        if s_x <= 0.0 {
            return 0.0;
        }
        let hi = self.quantile(1.0 - 1e-9).max(x * 2.0 + 1.0);
        // Simpson-ish trapezoid over [x, hi] of S(t)/S(x).
        let steps = 2_000;
        let dt = (hi - x) / steps as f64;
        let mut acc = 0.0;
        let mut prev = 1.0; // S(x)/S(x)
        for i in 1..=steps {
            let t = x + dt * i as f64;
            let cur = self.survival(t) / s_x;
            acc += 0.5 * (prev + cur) * dt;
            prev = cur;
        }
        acc
    }

    /// A short human-readable description.
    pub fn describe(&self) -> String {
        match self {
            Dist::Deterministic { value } => format!("Det({value})"),
            Dist::Uniform { lo, hi } => format!("U({lo},{hi})"),
            Dist::Exponential { rate } => format!("Exp(rate={rate})"),
            Dist::Weibull { shape, scale } => format!("Weibull(k={shape},λ={scale})"),
            Dist::Gamma { shape, scale } => format!("Gamma(k={shape},θ={scale})"),
            Dist::LogNormal { mu, sigma } => format!("LogN(μ={mu},σ={sigma})"),
            Dist::Normal { mean, std_dev } => format!("N({mean},{std_dev}²)"),
            Dist::Pareto { xm, alpha } => format!("Pareto(xm={xm},α={alpha})"),
            Dist::Erlang { k, rate } => format!("Erlang(k={k},rate={rate})"),
            Dist::Empirical { samples } => format!("Empirical(n={})", samples.len()),
            Dist::Mixture { components } => format!("Mixture({} parts)", components.len()),
            Dist::Shifted { offset, inner } => format!("{} + {}", offset, inner.describe()),
        }
    }
}

/// Standard normal via Marsaglia's polar method (exact, no tail truncation).
fn sample_std_normal(rng: &mut Stream) -> f64 {
    loop {
        let u = 2.0 * rng.uniform() - 1.0;
        let v = 2.0 * rng.uniform() - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Standard Gamma(shape, 1) via Marsaglia–Tsang; the shape < 1 case boosts
/// through Gamma(shape+1).
fn sample_gamma(shape: f64, rng: &mut Stream) -> f64 {
    if shape < 1.0 {
        let g = sample_gamma(shape + 1.0, rng);
        return g * rng.uniform_open().powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = sample_std_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u = rng.uniform_open();
        if u < 1.0 - 0.0331 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mc_mean(d: &Dist, n: usize, seed: u64) -> f64 {
        let mut rng = Stream::from_seed(seed);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    fn assert_mc_mean_matches(d: &Dist, tol: f64) {
        let m = mc_mean(d, 200_000, 42);
        let want = d.mean();
        assert!(
            (m - want).abs() / (1.0 + want.abs()) < tol,
            "{}: MC mean {m} vs analytic {want}",
            d.describe()
        );
    }

    #[test]
    fn sampler_means_match_analytic() {
        assert_mc_mean_matches(&Dist::exponential(0.5), 0.02);
        assert_mc_mean_matches(&Dist::weibull(0.7, 10.0), 0.03);
        assert_mc_mean_matches(&Dist::weibull(2.0, 5.0), 0.02);
        assert_mc_mean_matches(&Dist::gamma(0.5, 2.0), 0.02);
        assert_mc_mean_matches(&Dist::gamma(3.0, 1.5), 0.02);
        assert_mc_mean_matches(&Dist::lognormal(1.0, 0.5), 0.02);
        assert_mc_mean_matches(&Dist::normal(7.0, 2.0), 0.02);
        assert_mc_mean_matches(&Dist::pareto(1.0, 3.0), 0.03);
        assert_mc_mean_matches(&Dist::erlang(4, 2.0), 0.02);
        assert_mc_mean_matches(&Dist::uniform(2.0, 8.0), 0.02);
    }

    #[test]
    fn sampler_variances_match_analytic() {
        for d in [
            Dist::exponential(1.0),
            Dist::gamma(2.0, 3.0),
            Dist::lognormal(0.0, 0.8),
            Dist::erlang(3, 1.0),
        ] {
            let mut rng = Stream::from_seed(7);
            let n = 200_000;
            let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
            let m = xs.iter().sum::<f64>() / n as f64;
            let v = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (n - 1) as f64;
            let want = d.variance();
            assert!(
                (v - want).abs() / (1.0 + want) < 0.05,
                "{}: MC var {v} vs {want}",
                d.describe()
            );
        }
    }

    #[test]
    fn weibull_mean_constructor() {
        let d = Dist::weibull_mean(0.8, 1000.0);
        assert!((d.mean() - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn lognormal_mean_cv_constructor() {
        let d = Dist::lognormal_mean_cv(4.0, 1.5);
        assert!((d.mean() - 4.0).abs() < 1e-9);
        assert!((d.std_dev() / d.mean() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn cdf_quantile_roundtrip() {
        let dists = [
            Dist::exponential(2.0),
            Dist::weibull(1.5, 3.0),
            Dist::gamma(2.5, 1.0),
            Dist::lognormal(0.5, 1.0),
            Dist::normal(0.0, 1.0),
            Dist::pareto(2.0, 2.5),
            Dist::erlang(3, 0.5),
            Dist::uniform(1.0, 9.0),
        ];
        for d in &dists {
            for &q in &[0.01, 0.1, 0.5, 0.9, 0.99] {
                let x = d.quantile(q);
                let back = d.cdf(x);
                assert!(
                    (back - q).abs() < 1e-6,
                    "{}: q={q} -> x={x} -> cdf={back}",
                    d.describe()
                );
            }
        }
    }

    #[test]
    fn cdf_is_monotone_nondecreasing() {
        let d = Dist::mixture(vec![
            (0.3, Dist::exponential(1.0)),
            (0.7, Dist::gamma(2.0, 2.0)),
        ]);
        let mut last = 0.0;
        for i in 0..100 {
            let x = i as f64 * 0.2;
            let c = d.cdf(x);
            assert!(c >= last - 1e-12);
            last = c;
        }
        assert!(last > 0.9);
    }

    #[test]
    fn mixture_mean_is_weighted() {
        let d = Dist::mixture(vec![
            (1.0, Dist::deterministic(2.0)),
            (3.0, Dist::deterministic(6.0)),
        ]);
        assert!((d.mean() - 5.0).abs() < 1e-12);
        assert_mc_mean_matches(&d, 0.02);
    }

    #[test]
    fn mixture_variance_law_of_total() {
        // Two point masses at 0 and 10 with equal weight: var = 25.
        let d = Dist::mixture(vec![
            (1.0, Dist::deterministic(0.0)),
            (1.0, Dist::deterministic(10.0)),
        ]);
        assert!((d.variance() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn shifted_dist() {
        let d = Dist::shifted(100.0, Dist::exponential(1.0));
        assert!((d.mean() - 101.0).abs() < 1e-12);
        assert!((d.variance() - 1.0).abs() < 1e-12);
        assert_eq!(d.cdf(99.0), 0.0);
        assert!((d.cdf(101.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
        let mut rng = Stream::from_seed(3);
        assert!(d.sample(&mut rng) >= 100.0);
    }

    #[test]
    fn empirical_matches_data() {
        let d = Dist::empirical(vec![3.0, 1.0, 2.0, 4.0]);
        assert!((d.mean() - 2.5).abs() < 1e-12);
        assert_eq!(d.cdf(0.5), 0.0);
        assert_eq!(d.cdf(2.0), 0.5);
        assert_eq!(d.cdf(10.0), 1.0);
        assert_eq!(d.quantile(0.5), 2.0);
        assert_eq!(d.quantile(1.0), 4.0);
        let mut rng = Stream::from_seed(1);
        for _ in 0..100 {
            let s = d.sample(&mut rng);
            assert!([1.0, 2.0, 3.0, 4.0].contains(&s));
        }
    }

    #[test]
    fn pareto_infinite_moments() {
        assert_eq!(Dist::pareto(1.0, 0.9).mean(), f64::INFINITY);
        assert_eq!(Dist::pareto(1.0, 1.5).variance(), f64::INFINITY);
        assert!(Dist::pareto(1.0, 3.0).variance().is_finite());
    }

    #[test]
    fn deterministic_is_point_mass() {
        let d = Dist::deterministic(5.0);
        let mut rng = Stream::from_seed(1);
        assert_eq!(d.sample(&mut rng), 5.0);
        assert_eq!(d.variance(), 0.0);
        assert_eq!(d.cdf(4.999), 0.0);
        assert_eq!(d.cdf(5.0), 1.0);
        assert_eq!(d.quantile(0.3), 5.0);
    }

    #[test]
    #[should_panic(expected = "rate > 0")]
    fn bad_exponential_rejected() {
        let _ = Dist::exponential(0.0);
    }

    #[test]
    #[should_panic(expected = "lo < hi")]
    fn bad_uniform_rejected() {
        let _ = Dist::uniform(5.0, 5.0);
    }

    #[test]
    fn erlang_equals_gamma_integer() {
        let e = Dist::erlang(4, 2.0);
        let g = Dist::gamma(4.0, 0.5);
        for &x in &[0.5, 1.0, 2.0, 4.0] {
            assert!((e.cdf(x) - g.cdf(x)).abs() < 1e-10);
        }
        assert!((e.mean() - g.mean()).abs() < 1e-12);
    }

    #[test]
    fn hazard_shapes_tell_the_weibull_story() {
        // Exponential: flat hazard equal to the rate.
        let e = Dist::exponential(0.5);
        for &x in &[0.5, 2.0, 10.0] {
            assert!((e.hazard(x) - 0.5).abs() < 1e-3, "exp hazard at {x}");
        }
        // Weibull k<1: decreasing hazard (infant mortality).
        let infant = Dist::weibull(0.7, 10.0);
        assert!(infant.hazard(1.0) > infant.hazard(5.0));
        assert!(infant.hazard(5.0) > infant.hazard(20.0));
        // Weibull k>1: increasing hazard (wear-out).
        let wear = Dist::weibull(2.5, 10.0);
        assert!(wear.hazard(1.0) < wear.hazard(5.0));
        assert!(wear.hazard(5.0) < wear.hazard(20.0));
    }

    #[test]
    fn survival_complements_cdf() {
        let d = Dist::gamma(2.0, 3.0);
        for &x in &[0.1, 1.0, 5.0, 20.0] {
            assert!((d.survival(x) + d.cdf(x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn memoryless_exponential_residual_life() {
        // E[X − x | X > x] = mean, for every x: the memoryless property.
        let d = Dist::exponential(0.25);
        for &x in &[0.0_f64.max(1e-9), 2.0, 10.0] {
            let mrl = d.mean_residual_life(x);
            assert!(
                (mrl - 4.0).abs() / 4.0 < 0.01,
                "residual at {x} was {mrl}, want 4"
            );
        }
    }

    #[test]
    fn weibull_infant_mortality_residual_life_grows() {
        // Decreasing hazard => survivors are *better* than new (the
        // counter-intuitive fact behind burn-in): mean residual life
        // increases with age.
        let d = Dist::weibull(0.6, 10.0);
        let fresh = d.mean_residual_life(1e-6);
        let aged = d.mean_residual_life(20.0);
        assert!(
            aged > 1.5 * fresh,
            "aged {aged} should exceed fresh {fresh}"
        );
    }

    #[test]
    fn serde_roundtrip() {
        let d = Dist::mixture(vec![
            (0.5, Dist::weibull(0.7, 1e5)),
            (0.5, Dist::shifted(60.0, Dist::lognormal(5.0, 1.2))),
        ]);
        let json = serde_json::to_string(&d).unwrap();
        let back: Dist = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_dist() -> impl Strategy<Value = Dist> {
        prop_oneof![
            (0.01f64..100.0).prop_map(Dist::exponential),
            (0.2f64..5.0, 0.1f64..100.0).prop_map(|(k, s)| Dist::weibull(k, s)),
            (0.2f64..5.0, 0.1f64..100.0).prop_map(|(k, s)| Dist::gamma(k, s)),
            (-2.0f64..2.0, 0.1f64..2.0).prop_map(|(m, s)| Dist::lognormal(m, s)),
            (0.1f64..10.0, 2.1f64..10.0).prop_map(|(xm, a)| Dist::pareto(xm, a)),
            (1u32..10, 0.1f64..10.0).prop_map(|(k, r)| Dist::erlang(k, r)),
        ]
    }

    proptest! {
        #[test]
        fn samples_are_in_support(d in arb_dist(), seed in any::<u64>()) {
            let mut rng = Stream::from_seed(seed);
            for _ in 0..20 {
                let x = d.sample(&mut rng);
                prop_assert!(x.is_finite());
                prop_assert!(x >= 0.0, "{} produced negative {x}", d.describe());
            }
        }

        #[test]
        fn cdf_bounds(d in arb_dist(), x in -10.0f64..1e4) {
            let c = d.cdf(x);
            prop_assert!((0.0..=1.0).contains(&c));
        }

        #[test]
        fn quantile_inverts_cdf(d in arb_dist(), q in 0.01f64..0.99) {
            let x = d.quantile(q);
            prop_assert!((d.cdf(x) - q).abs() < 1e-5,
                "{}: quantile({q}) = {x}, cdf back = {}", d.describe(), d.cdf(x));
        }

        #[test]
        fn serde_roundtrips(d in arb_dist()) {
            let json = serde_json::to_string(&d).unwrap();
            let back: Dist = serde_json::from_str(&json).unwrap();
            prop_assert_eq!(d, back);
        }
    }
}
