//! Special functions, implemented from scratch (no external math deps).
//!
//! Accuracy targets are those of the classic Numerical-Recipes-style
//! routines: ~1e-10 relative for `ln_gamma`, ~1e-8 for the regularized
//! incomplete gamma, ~1.2e-7 absolute for `erf`, ~1e-9 for the inverse
//! normal cdf — far tighter than anything simulation output noise can see.

/// Natural log of the Gamma function, Lanczos approximation (g = 7, n = 9).
/// Valid for `x > 0`.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma P(a, x) = γ(a,x)/Γ(a), for a > 0, x ≥ 0.
///
/// Series expansion for `x < a + 1`, continued fraction otherwise.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_p domain: a={a}, x={x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma Q(a, x) = 1 − P(a, x).
pub fn gamma_q(a: f64, x: f64) -> f64 {
    1.0 - gamma_p(a, x)
}

fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

fn gamma_q_cf(a: f64, x: f64) -> f64 {
    // Modified Lentz's method for the continued fraction representation.
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Error function, Abramowitz & Stegun 7.1.26 rational approximation
/// (|error| ≤ 1.5e-7) with odd symmetry.
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Complementary error function.
pub fn erfc(x: f64) -> f64 {
    1.0 - erf(x)
}

/// Standard normal cdf Φ(z).
pub fn norm_cdf(z: f64) -> f64 {
    0.5 * erfc(-z / std::f64::consts::SQRT_2)
}

/// Inverse of the standard normal cdf (Acklam's algorithm, |rel err| < 1.15e-9).
pub fn norm_quantile(p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "norm_quantile domain: {p}");
    if p == 0.0 {
        return f64::NEG_INFINITY;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }
    const A: [f64; 6] = [
        -39.696_830_286_653_76,
        220.946_098_424_520_9,
        -275.928_510_446_968_9,
        138.357_751_867_269_2,
        -30.664_798_066_147_16,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -54.476_098_798_224_06,
        161.585_836_858_040_99,
        -155.698_979_859_886_66,
        66.801_311_887_719_72,
        -13.280_681_552_885_72,
    ];
    const C: [f64; 6] = [
        -0.007_784_894_002_430_293,
        -0.322_396_458_041_136_4,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        0.007_784_695_709_041_462,
        0.322_467_129_070_039_8,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    const P_HIGH: f64 = 1.0 - P_LOW;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Digamma function ψ(x) (derivative of ln Γ), for x > 0. Used by the
/// gamma-MLE fitter. Asymptotic series after argument shifting.
pub fn digamma(x: f64) -> f64 {
    assert!(x > 0.0, "digamma requires x > 0");
    let mut x = x;
    let mut result = 0.0;
    // Shift x up until the asymptotic series converges well.
    while x < 12.0 {
        result -= 1.0 / x;
        x += 1.0;
    }
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    result + x.ln()
        - 0.5 * inv
        - inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 * (1.0 / 252.0 - inv2 / 240.0)))
}

/// Γ(x) for moderate x, via `ln_gamma`.
pub fn gamma_fn(x: f64) -> f64 {
    ln_gamma(x).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + b.abs())
    }

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1)=1, Γ(2)=1, Γ(5)=24, Γ(0.5)=√π
        assert!(close(ln_gamma(1.0), 0.0, 1e-12));
        assert!(close(ln_gamma(2.0), 0.0, 1e-12));
        assert!(close(ln_gamma(5.0), 24f64.ln(), 1e-12));
        assert!(close(
            ln_gamma(0.5),
            std::f64::consts::PI.sqrt().ln(),
            1e-10
        ));
        assert!(close(ln_gamma(10.0), 362_880f64.ln(), 1e-12));
    }

    #[test]
    fn gamma_recurrence() {
        // Γ(x+1) = x Γ(x)
        for &x in &[0.3, 1.7, 4.2, 9.9] {
            assert!(close(ln_gamma(x + 1.0), ln_gamma(x) + x.ln(), 1e-11));
        }
    }

    #[test]
    fn gamma_p_known_values() {
        // P(1, x) = 1 - e^{-x}
        for &x in &[0.1, 0.5, 1.0, 2.0, 5.0, 10.0] {
            assert!(close(gamma_p(1.0, x), 1.0 - (-x).exp(), 1e-10));
        }
        // P(a, 0) = 0; P(a, inf) -> 1
        assert_eq!(gamma_p(3.0, 0.0), 0.0);
        assert!(gamma_p(3.0, 1e3) > 1.0 - 1e-12);
        // Chi-square connection: P(k/2, x/2) at k=2 d.f., x=5.99 ≈ 0.95
        assert!(close(gamma_p(1.0, 5.99 / 2.0), 0.95, 1e-2));
    }

    #[test]
    fn gamma_p_plus_q_is_one() {
        for &a in &[0.5, 1.0, 2.5, 10.0] {
            for &x in &[0.2, 1.0, 3.0, 20.0] {
                assert!(close(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-12));
            }
        }
    }

    #[test]
    fn erf_known_values() {
        // A&S 7.1.26 is a 1.5e-7-absolute-error approximation; at zero the
        // polynomial cancels to ~1e-9 rather than exactly 0.
        assert!(erf(0.0).abs() < 1e-8);
        assert!((erf(1.0) - 0.842_700_79).abs() < 2e-7);
        assert!((erf(2.0) - 0.995_322_27).abs() < 2e-7);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 2e-7);
        assert!(erf(6.0) > 0.999_999_99);
    }

    #[test]
    fn norm_cdf_symmetry_and_values() {
        assert!((norm_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((norm_cdf(1.96) - 0.975).abs() < 1e-4);
        assert!((norm_cdf(-1.96) - 0.025).abs() < 1e-4);
        for &z in &[0.3, 1.1, 2.7] {
            assert!((norm_cdf(z) + norm_cdf(-z) - 1.0).abs() < 1e-7);
        }
    }

    #[test]
    fn norm_quantile_inverts_cdf() {
        for &p in &[0.001, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999] {
            let z = norm_quantile(p);
            assert!((norm_cdf(z) - p).abs() < 1e-6, "p={p} z={z}");
        }
        assert_eq!(norm_quantile(0.0), f64::NEG_INFINITY);
        assert_eq!(norm_quantile(1.0), f64::INFINITY);
    }

    #[test]
    fn digamma_known_values() {
        // ψ(1) = -γ (Euler–Mascheroni)
        assert!((digamma(1.0) + 0.577_215_664_901_532_9).abs() < 1e-10);
        // ψ(x+1) = ψ(x) + 1/x
        for &x in &[0.4, 1.3, 5.5] {
            assert!((digamma(x + 1.0) - digamma(x) - 1.0 / x).abs() < 1e-10);
        }
        // ψ(0.5) = -γ - 2 ln 2
        assert!((digamma(0.5) + 0.577_215_664_901_532_9 + 2.0 * 2f64.ln()).abs() < 1e-10);
    }

    #[test]
    fn gamma_fn_factorials() {
        assert!(close(gamma_fn(4.0), 6.0, 1e-12));
        assert!(close(gamma_fn(6.0), 120.0, 1e-12));
    }
}
