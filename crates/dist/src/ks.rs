//! Kolmogorov–Smirnov one-sample goodness-of-fit test.
//!
//! Used in two roles: model selection inside [`crate::fit::fit_best`]
//! (pick the candidate family whose fitted cdf is closest to the data),
//! and simulator validation (paper §4.3): check that our samplers actually
//! produce their claimed distributions.

use crate::dist::Dist;

/// Outcome of a KS test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsResult {
    /// The KS statistic `D = sup |F_n(x) − F(x)|`.
    pub statistic: f64,
    /// Asymptotic p-value (probability of seeing a D this large under H₀).
    pub p_value: f64,
    /// Sample size.
    pub n: usize,
}

impl KsResult {
    /// True if H₀ ("data follows the distribution") is *not* rejected at
    /// significance `alpha`.
    pub fn accepts(&self, alpha: f64) -> bool {
        self.p_value > alpha
    }
}

/// The KS statistic of `data` against the theoretical cdf of `dist`.
/// `data` need not be sorted.
pub fn ks_statistic(data: &[f64], dist: &Dist) -> f64 {
    assert!(!data.is_empty(), "KS needs data");
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite data"));
    let n = sorted.len() as f64;
    let mut d = 0.0f64;
    for (i, &x) in sorted.iter().enumerate() {
        let f = dist.cdf(x);
        // ECDF jumps at x: compare against both the pre- and post-jump level.
        let lo = i as f64 / n;
        let hi = (i + 1) as f64 / n;
        d = d.max((f - lo).abs()).max((hi - f).abs());
    }
    d
}

/// Full KS test of `data` against `dist`, with asymptotic p-value
/// (Marsaglia–Tsang–Wang-style series with the Stephens small-sample
/// correction).
pub fn ks_test(data: &[f64], dist: &Dist) -> KsResult {
    let d = ks_statistic(data, dist);
    let n = data.len();
    let sqrt_n = (n as f64).sqrt();
    let lambda = (sqrt_n + 0.12 + 0.11 / sqrt_n) * d;
    KsResult {
        statistic: d,
        p_value: kolmogorov_q(lambda),
        n,
    }
}

/// Kolmogorov's Q function: `Q(λ) = 2 Σ_{k≥1} (−1)^{k−1} e^{−2k²λ²}`.
fn kolmogorov_q(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0f64;
    let mut sign = 1.0f64;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64) * (k as f64) * lambda * lambda).exp();
        sum += sign * term;
        if term < 1e-12 {
            break;
        }
        sign = -sign;
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wt_des::rng::Stream;

    fn draw(d: &Dist, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = Stream::from_seed(seed);
        (0..n).map(|_| d.sample(&mut rng)).collect()
    }

    #[test]
    fn samplers_pass_ks_against_own_cdf() {
        let dists = [
            Dist::exponential(1.5),
            Dist::weibull(0.7, 2.0),
            Dist::weibull(3.0, 1.0),
            Dist::gamma(0.5, 1.0),
            Dist::gamma(4.0, 0.5),
            Dist::lognormal(0.0, 1.0),
            Dist::normal(5.0, 2.0),
            Dist::pareto(1.0, 2.0),
            Dist::erlang(3, 1.0),
            Dist::uniform(0.0, 1.0),
        ];
        for (i, d) in dists.iter().enumerate() {
            let data = draw(d, 5_000, 1000 + i as u64);
            let r = ks_test(&data, d);
            assert!(
                r.accepts(0.001),
                "{} failed KS: D={} p={}",
                d.describe(),
                r.statistic,
                r.p_value
            );
        }
    }

    #[test]
    fn ks_rejects_wrong_distribution() {
        // Exponential data against a Weibull(3) hypothesis: clearly wrong.
        let data = draw(&Dist::exponential(1.0), 2_000, 9);
        let r = ks_test(&data, &Dist::weibull(3.0, 1.0));
        assert!(!r.accepts(0.05), "should reject: p={}", r.p_value);
        assert!(r.statistic > 0.1);
    }

    #[test]
    fn ks_statistic_exact_small_case() {
        // Data {0.5} against U(0,1): ECDF jumps 0 -> 1 at 0.5; D = 0.5.
        let d = ks_statistic(&[0.5], &Dist::uniform(0.0, 1.0));
        assert!((d - 0.5).abs() < 1e-12);
    }

    #[test]
    fn kolmogorov_q_limits() {
        assert_eq!(kolmogorov_q(0.0), 1.0);
        assert!(kolmogorov_q(0.3) > 0.99);
        assert!(kolmogorov_q(2.0) < 0.001);
        // Q(1.3581) ≈ 0.05 (the classic critical value)
        assert!((kolmogorov_q(1.3581) - 0.05).abs() < 0.002);
    }

    #[test]
    fn p_value_roughly_uniform_under_null() {
        // Repeated KS tests on true-null data should rarely reject at 1%.
        let d = Dist::gamma(2.0, 1.0);
        let mut rejects = 0;
        for seed in 0..50 {
            let data = draw(&d, 500, seed);
            if !ks_test(&data, &d).accepts(0.01) {
                rejects += 1;
            }
        }
        assert!(rejects <= 3, "too many null rejections: {rejects}/50");
    }
}
