//! # wt-dist — probability distributions for the wind tunnel
//!
//! The paper's core criticism of analytical data center models (§2.2) is
//! that they force exponential failure and repair times, while measured
//! behavior follows Weibull or Gamma (disk replacements, Schroeder–Gibson
//! FAST'07) and lognormal (repair times) laws. This crate provides:
//!
//! * [`Dist`] — a serializable algebra of distributions (exponential,
//!   Weibull, gamma, lognormal, normal, uniform, deterministic, Pareto,
//!   Erlang, empirical, mixtures) with exact sampling, cdf/quantile and
//!   moments ([`dist`]),
//! * [`fit`] — parameter estimation from observed data (the §4.4
//!   "operational logs → models" pipeline),
//! * [`ks`] — Kolmogorov–Smirnov goodness-of-fit, used both to select
//!   fitted models and to validate the simulator's samplers,
//! * [`ad`] — Anderson–Darling goodness-of-fit, the tail-sensitive
//!   complement to KS (decisive for the exponential-vs-Weibull hazard
//!   question),
//! * [`special`] — the special functions (ln Γ, regularized incomplete
//!   gamma, erf, Φ⁻¹) everything above needs, implemented from scratch.
//!
//! ```
//! use wt_dist::Dist;
//! use wt_des::rng::Stream;
//!
//! // Disk lifetime: Weibull with decreasing hazard (shape < 1), per
//! // Schroeder & Gibson's field data.
//! let life = Dist::weibull(0.8, 100_000.0);
//! let mut rng = Stream::from_seed(1);
//! let sample = life.sample(&mut rng);
//! assert!(sample > 0.0);
//! assert!((life.mean() - 113_149.0).abs() / life.mean() < 1e-2);
//! ```

pub mod ad;
pub mod dist;
pub mod fit;
pub mod ks;
pub mod special;

pub use ad::{ad_statistic, ad_test, AdResult};
pub use dist::Dist;
pub use fit::{fit_best, FitReport};
pub use ks::{ks_statistic, ks_test, KsResult};
