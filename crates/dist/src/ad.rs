//! Anderson–Darling goodness-of-fit test.
//!
//! Complements Kolmogorov–Smirnov ([`crate::ks`]): the A² statistic weights
//! discrepancies by `1/(F(1−F))`, so it is far more sensitive in the
//! *tails* — exactly where the §2.2 exponential-vs-Weibull distinction
//! lives (infant mortality, wear-out). Used alongside KS when selecting
//! models in the log-seeding pipeline.

use crate::dist::Dist;

/// Result of an Anderson–Darling test against a fully specified
/// distribution (parameters not estimated from this sample — the "case 0"
/// critical values).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdResult {
    /// The A² statistic.
    pub statistic: f64,
    /// Sample size.
    pub n: usize,
}

/// Case-0 critical values for A² (Stephens 1974): significance levels
/// 10%, 5%, 2.5%, 1%.
const CRITICAL: [(f64, f64); 4] = [(0.10, 1.933), (0.05, 2.492), (0.025, 3.070), (0.01, 3.857)];

impl AdResult {
    /// True if H₀ is *not* rejected at significance `alpha`
    /// (alpha ∈ {0.10, 0.05, 0.025, 0.01}; the nearest tabulated level at
    /// or below `alpha` is used).
    pub fn accepts(&self, alpha: f64) -> bool {
        let critical = CRITICAL
            .iter()
            .filter(|(a, _)| *a >= alpha)
            .map(|(_, c)| *c)
            .next_back()
            .unwrap_or(3.857);
        self.statistic <= critical
    }
}

/// The A² statistic of `data` against the theoretical cdf of `dist`.
///
/// `A² = −n − (1/n) Σᵢ (2i−1) [ln F(x₍ᵢ₎) + ln(1 − F(x₍ₙ₊₁₋ᵢ₎))]`
pub fn ad_statistic(data: &[f64], dist: &Dist) -> f64 {
    assert!(data.len() >= 2, "AD needs at least 2 observations");
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite data"));
    let n = sorted.len();
    let nf = n as f64;
    // Clamp F away from {0, 1} so the logs stay finite (standard practice;
    // matters only for samples outside the distribution's support).
    let f = |x: f64| dist.cdf(x).clamp(1e-12, 1.0 - 1e-12);
    let mut sum = 0.0;
    for i in 0..n {
        let weight = (2 * i + 1) as f64;
        sum += weight * (f(sorted[i]).ln() + (1.0 - f(sorted[n - 1 - i])).ln());
    }
    -nf - sum / nf
}

/// Full AD test.
pub fn ad_test(data: &[f64], dist: &Dist) -> AdResult {
    AdResult {
        statistic: ad_statistic(data, dist),
        n: data.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wt_des::rng::Stream;

    fn draw(d: &Dist, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = Stream::from_seed(seed);
        (0..n).map(|_| d.sample(&mut rng)).collect()
    }

    #[test]
    fn true_null_accepted() {
        for (i, d) in [
            Dist::exponential(1.0),
            Dist::weibull(0.7, 2.0),
            Dist::lognormal(0.0, 1.0),
            Dist::uniform(0.0, 1.0),
            Dist::gamma(3.0, 1.0),
        ]
        .iter()
        .enumerate()
        {
            let data = draw(d, 2_000, 100 + i as u64);
            let r = ad_test(&data, d);
            assert!(
                r.accepts(0.01),
                "{}: A² = {} should accept",
                d.describe(),
                r.statistic
            );
        }
    }

    #[test]
    fn wrong_family_rejected() {
        // Weibull(0.7) data vs an exponential of the same mean: KS might
        // hesitate at small n, AD sees the tails.
        let truth = Dist::weibull_mean(0.7, 10.0);
        let data = draw(&truth, 2_000, 3);
        let wrong = Dist::exponential_mean(10.0);
        let r = ad_test(&data, &wrong);
        assert!(!r.accepts(0.01), "A² = {} should reject", r.statistic);
    }

    #[test]
    fn ad_more_sensitive_than_ks_in_tails() {
        // A mild tail difference at modest n: compare the two statistics'
        // rejection behavior. Weibull(0.85) vs exponential, same mean.
        let truth = Dist::weibull_mean(0.85, 1.0);
        let wrong = Dist::exponential_mean(1.0);
        let mut ad_rejects = 0;
        let mut ks_rejects = 0;
        for seed in 0..20 {
            let data = draw(&truth, 400, 50 + seed);
            if !ad_test(&data, &wrong).accepts(0.05) {
                ad_rejects += 1;
            }
            if !crate::ks::ks_test(&data, &wrong).accepts(0.05) {
                ks_rejects += 1;
            }
        }
        assert!(
            ad_rejects >= ks_rejects,
            "AD ({ad_rejects}/20) should reject at least as often as KS ({ks_rejects}/20)"
        );
        assert!(
            ad_rejects > 10,
            "AD should usually spot the tail: {ad_rejects}/20"
        );
    }

    #[test]
    fn statistic_grows_with_mismatch() {
        let data = draw(&Dist::exponential(1.0), 1_000, 7);
        let close = ad_statistic(&data, &Dist::exponential(1.0));
        let far = ad_statistic(&data, &Dist::exponential(5.0));
        assert!(far > 10.0 * close.max(0.1), "close {close}, far {far}");
    }

    #[test]
    fn out_of_support_data_stays_finite() {
        // Data below a Pareto's minimum: F = 0 there; the clamp keeps A²
        // finite (and enormous).
        let r = ad_test(&[0.1, 0.2, 5.0], &Dist::pareto(1.0, 2.0));
        assert!(r.statistic.is_finite());
        assert!(!r.accepts(0.01));
    }

    #[test]
    fn alpha_table_lookup() {
        let r = AdResult {
            statistic: 2.0,
            n: 100,
        };
        assert!(r.accepts(0.05)); // 2.0 < 2.492
        assert!(!r.accepts(0.10)); // 2.0 > 1.933
    }
}
