//! Cost accounting: the denominator of every wind tunnel what-if question
//! ("…at minimum total operating cost", §3 Hardware provisioning).
//!
//! TCO = amortized capex + power opex (with a datacenter PUE factor).
//! Deliberately simple — the wind tunnel compares configurations against
//! each other, so shared constants (building, staff) cancel out.

use crate::topology::TopologySpec;
use serde::{Deserialize, Serialize};

/// Pricing assumptions for turning a [`TopologySpec`] into $/year.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Electricity price, USD per kWh.
    pub usd_per_kwh: f64,
    /// Power usage effectiveness: facility power ÷ IT power.
    pub pue: f64,
    /// Hardware amortization period, years.
    pub amortization_years: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            usd_per_kwh: 0.10,
            pue: 1.5,
            amortization_years: 3.0,
        }
    }
}

/// A cost breakdown for a topology.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Total purchase price, USD.
    pub capex_usd: f64,
    /// Peak IT power, watts.
    pub it_power_watts: f64,
    /// Amortized capex per year, USD.
    pub capex_usd_per_year: f64,
    /// Power opex per year (with PUE), USD.
    pub power_usd_per_year: f64,
    /// Total cost per year, USD.
    pub tco_usd_per_year: f64,
    /// Total raw storage, GB.
    pub raw_storage_gb: f64,
}

impl CostModel {
    /// Costs out one topology.
    pub fn cost(&self, spec: &TopologySpec) -> CostBreakdown {
        let nodes = spec.node_count() as f64;
        let node_capex = spec.node.capex_usd();
        let node_power = spec.node.power_watts();

        let switch_capex = spec.racks as f64 * spec.tor.capex_usd + spec.agg.capex_usd;
        let switch_power = spec.racks as f64 * spec.tor.power_watts + spec.agg.power_watts;

        let capex = nodes * node_capex + switch_capex;
        let it_power = nodes * node_power + switch_power;

        let capex_year = capex / self.amortization_years;
        let kwh_per_year = it_power * self.pue * 24.0 * 365.0 / 1000.0;
        let power_year = kwh_per_year * self.usd_per_kwh;

        CostBreakdown {
            capex_usd: capex,
            it_power_watts: it_power,
            capex_usd_per_year: capex_year,
            power_usd_per_year: power_year,
            tco_usd_per_year: capex_year + power_year,
            raw_storage_gb: nodes * spec.node.storage_gb(),
        }
    }

    /// $/GB/year of raw storage for a topology — the unit the paper's
    /// replication-factor trade-off (§1) is denominated in.
    pub fn storage_cost_per_gb_year(&self, spec: &TopologySpec) -> f64 {
        let b = self.cost(spec);
        b.tco_usd_per_year / b.raw_storage_gb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    fn spec_with(disk: crate::disk::DiskSpec, racks: usize, per_rack: usize) -> TopologySpec {
        TopologySpec {
            racks,
            nodes_per_rack: per_rack,
            node: catalog::node_storage_server(disk, 8, catalog::nic_10g()),
            tor: catalog::switch_tor_48x10g(),
            agg: catalog::switch_agg_32x40g(),
            oversubscription: 4.0,
        }
    }

    #[test]
    fn tco_components_add_up() {
        let m = CostModel::default();
        let b = m.cost(&spec_with(catalog::hdd_7200_4t(), 2, 10));
        assert!((b.tco_usd_per_year - (b.capex_usd_per_year + b.power_usd_per_year)).abs() < 1e-6);
        assert!(b.capex_usd > 0.0 && b.it_power_watts > 0.0);
    }

    #[test]
    fn more_nodes_cost_more() {
        let m = CostModel::default();
        let small = m.cost(&spec_with(catalog::hdd_7200_4t(), 1, 10));
        let big = m.cost(&spec_with(catalog::hdd_7200_4t(), 2, 10));
        // The aggregation switch is shared, so TCO grows sub-linearly in
        // racks — but the marginal rack must cost exactly one rack of
        // nodes + one ToR.
        assert!(big.tco_usd_per_year > small.tco_usd_per_year * 1.3);
        let marginal = big.capex_usd - small.capex_usd;
        let expected = 10.0 * spec_with(catalog::hdd_7200_4t(), 1, 10).node.capex_usd()
            + catalog::switch_tor_48x10g().capex_usd;
        assert!((marginal - expected).abs() < 1e-6);
    }

    #[test]
    fn hdd_cheaper_per_gb_than_ssd() {
        let m = CostModel::default();
        let hdd = m.storage_cost_per_gb_year(&spec_with(catalog::hdd_7200_4t(), 2, 10));
        let ssd = m.storage_cost_per_gb_year(&spec_with(catalog::ssd_sata_1t(), 2, 10));
        assert!(
            ssd > 3.0 * hdd,
            "SSD/GB should be much dearer: hdd={hdd}, ssd={ssd}"
        );
    }

    #[test]
    fn power_price_scales_opex_only() {
        let mut m = CostModel::default();
        let spec = spec_with(catalog::hdd_7200_4t(), 1, 10);
        let cheap = m.cost(&spec);
        m.usd_per_kwh *= 2.0;
        let dear = m.cost(&spec);
        assert!((dear.power_usd_per_year - 2.0 * cheap.power_usd_per_year).abs() < 1e-6);
        assert_eq!(dear.capex_usd_per_year, cheap.capex_usd_per_year);
    }

    #[test]
    fn amortization_spreads_capex() {
        let mut m = CostModel {
            amortization_years: 6.0,
            ..CostModel::default()
        };
        let spec = spec_with(catalog::hdd_7200_4t(), 1, 10);
        let b6 = m.cost(&spec);
        m.amortization_years = 3.0;
        let b3 = m.cost(&spec);
        assert!((b3.capex_usd_per_year - 2.0 * b6.capex_usd_per_year).abs() < 1e-6);
    }
}
