//! Datacenter topology: racks of nodes behind top-of-rack switches, joined
//! by an aggregation layer.
//!
//! The topology gives the cluster simulator two things: a stable enumeration
//! of every failable component (§4.5 — disks, NICs, switches, whole nodes),
//! and network paths with hop latency and bottleneck bandwidth, including
//! the ToR-uplink oversubscription that makes inter-rack transfers the
//! scarce resource (§4.2's locality example: a transfer within a rack only
//! touches the two nodes and the ToR switch).

use crate::net::SwitchSpec;
use crate::node::NodeSpec;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a node (server) within a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Identifies one disk slot on one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DiskId {
    /// Owning node.
    pub node: NodeId,
    /// Slot index within the node.
    pub slot: u8,
}

/// Identifies a switch. ToR switches come first (one per rack), then the
/// aggregation switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SwitchId(pub u32);

/// Any failable hardware component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ComponentId {
    /// A whole server.
    Node(NodeId),
    /// One disk.
    Disk(DiskId),
    /// One server's NIC.
    Nic(NodeId),
    /// A ToR or aggregation switch.
    Switch(SwitchId),
}

impl fmt::Display for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComponentId::Node(n) => write!(f, "node{}", n.0),
            ComponentId::Disk(d) => write!(f, "node{}.disk{}", d.node.0, d.slot),
            ComponentId::Nic(n) => write!(f, "node{}.nic", n.0),
            ComponentId::Switch(s) => write!(f, "switch{}", s.0),
        }
    }
}

/// Declarative description of a datacenter build-out.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopologySpec {
    /// Number of racks.
    pub racks: usize,
    /// Servers per rack.
    pub nodes_per_rack: usize,
    /// The (homogeneous) server model.
    pub node: NodeSpec,
    /// Top-of-rack switch model.
    pub tor: SwitchSpec,
    /// Aggregation switch model (joins the ToRs; single logical device).
    pub agg: SwitchSpec,
    /// ToR uplink oversubscription factor: 1.0 = full bisection, 4.0 means
    /// the uplink carries 1/4 of the rack's aggregate edge bandwidth.
    pub oversubscription: f64,
}

impl TopologySpec {
    /// Instantiates the topology, assigning stable component IDs.
    pub fn build(&self) -> Topology {
        assert!(self.racks > 0 && self.nodes_per_rack > 0);
        assert!(self.oversubscription >= 1.0, "oversubscription >= 1.0");
        assert!(
            self.nodes_per_rack as u32 <= self.tor.ports,
            "rack of {} nodes exceeds ToR ports ({})",
            self.nodes_per_rack,
            self.tor.ports
        );
        Topology { spec: self.clone() }
    }

    /// Total number of servers.
    pub fn node_count(&self) -> usize {
        self.racks * self.nodes_per_rack
    }

    /// The latency floor of any network path leaving a whole-rack
    /// partition — always an inter-rack path: NIC → ToR → agg → ToR →
    /// NIC. This lower-bounds every cross-partition interaction, so it
    /// is the wire half of the conservative lookahead for partitioned
    /// execution (see [`Topology::partition_by`]).
    pub fn min_cross_latency_s(&self) -> f64 {
        2.0 * self.node.nic.latency_s + 2.0 * self.tor.latency_s + self.agg.latency_s
    }
}

/// A built topology: ID assignment plus path/locality queries.
///
/// Node IDs are dense `0..node_count`, rack-major: node `i` lives in rack
/// `i / nodes_per_rack`. Switch IDs `0..racks` are the ToRs, `racks` is the
/// aggregation switch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    spec: TopologySpec,
}

/// A network path between two nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    /// Switches traversed, in order.
    pub hops: Vec<SwitchId>,
    /// One-way propagation + switching latency, seconds (NIC latency at
    /// both ends included).
    pub latency_s: f64,
    /// Bottleneck bandwidth along the path, Gbit/s (NIC line rate capped by
    /// the oversubscribed uplink for inter-rack paths).
    pub bottleneck_gbps: f64,
}

impl Path {
    /// Time to move `bytes` over this path, unloaded.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        self.latency_s + bytes as f64 * 8.0 / (self.bottleneck_gbps * 1e9)
    }
}

/// The scalar facts of a path — latency and bottleneck — without the hop
/// list. `Copy`, so hot loops (the perf engine prices every NIC transfer)
/// get path answers with no heap allocation; [`Topology::path`] layers the
/// hop vector on top for callers that need the route itself.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathInfo {
    /// One-way propagation + switching latency, seconds (NIC latency at
    /// both ends included).
    pub latency_s: f64,
    /// Bottleneck bandwidth along the path, Gbit/s.
    pub bottleneck_gbps: f64,
}

impl PathInfo {
    /// Time to move `bytes` over this path, unloaded.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        self.latency_s + bytes as f64 * 8.0 / (self.bottleneck_gbps * 1e9)
    }
}

impl Topology {
    /// The spec this topology was built from.
    pub fn spec(&self) -> &TopologySpec {
        &self.spec
    }

    /// Total number of servers.
    pub fn node_count(&self) -> usize {
        self.spec.node_count()
    }

    /// All node IDs.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count() as u32).map(NodeId)
    }

    /// The rack housing `node`.
    pub fn rack_of(&self, node: NodeId) -> usize {
        assert!((node.0 as usize) < self.node_count(), "unknown {node:?}");
        node.0 as usize / self.spec.nodes_per_rack
    }

    /// True if both nodes share a rack (and hence a ToR).
    pub fn same_rack(&self, a: NodeId, b: NodeId) -> bool {
        self.rack_of(a) == self.rack_of(b)
    }

    /// The ToR switch of `rack`.
    pub fn tor_of_rack(&self, rack: usize) -> SwitchId {
        assert!(rack < self.spec.racks);
        SwitchId(rack as u32)
    }

    /// The aggregation switch.
    pub fn agg_switch(&self) -> SwitchId {
        SwitchId(self.spec.racks as u32)
    }

    /// Number of switches (ToRs + aggregation).
    pub fn switch_count(&self) -> usize {
        self.spec.racks + 1
    }

    /// Disk IDs of one node.
    pub fn disks_of(&self, node: NodeId) -> impl Iterator<Item = DiskId> + '_ {
        let slots = self.spec.node.disks.len() as u8;
        (0..slots).map(move |slot| DiskId { node, slot })
    }

    /// Every failable component, in a stable order: nodes, disks, NICs,
    /// switches. Streaming form of [`components`](Self::components) — at
    /// million-component scale, callers that only scan (fault pickers,
    /// census counters) should not materialize the whole census.
    pub fn components_iter(&self) -> impl Iterator<Item = ComponentId> + '_ {
        self.nodes()
            .map(ComponentId::Node)
            .chain(
                self.nodes()
                    .flat_map(|n| self.disks_of(n).map(ComponentId::Disk)),
            )
            .chain(self.nodes().map(ComponentId::Nic))
            .chain((0..self.switch_count() as u32).map(|s| ComponentId::Switch(SwitchId(s))))
    }

    /// [`components_iter`](Self::components_iter), collected.
    pub fn components(&self) -> Vec<ComponentId> {
        self.components_iter().collect()
    }

    /// Effective uplink bandwidth from a rack to the aggregation layer,
    /// after oversubscription.
    pub fn uplink_gbps(&self) -> f64 {
        let edge = self.spec.nodes_per_rack as f64 * self.spec.node.nic.bandwidth_gbps;
        edge / self.spec.oversubscription
    }

    /// Latency and bottleneck bandwidth from `src` to `dst`, without
    /// materializing the hop list. Same node → free path. Same rack → one
    /// ToR hop. Otherwise ToR → agg → ToR with the oversubscribed uplink.
    pub fn path_info(&self, src: NodeId, dst: NodeId) -> PathInfo {
        let nic = &self.spec.node.nic;
        if src == dst {
            return PathInfo {
                latency_s: 0.0,
                bottleneck_gbps: f64::INFINITY,
            };
        }
        if self.rack_of(src) == self.rack_of(dst) {
            PathInfo {
                latency_s: 2.0 * nic.latency_s + self.spec.tor.latency_s,
                bottleneck_gbps: nic.bandwidth_gbps.min(self.spec.tor.port_bandwidth_gbps),
            }
        } else {
            PathInfo {
                latency_s: 2.0 * nic.latency_s
                    + 2.0 * self.spec.tor.latency_s
                    + self.spec.agg.latency_s,
                bottleneck_gbps: nic
                    .bandwidth_gbps
                    .min(self.spec.tor.port_bandwidth_gbps)
                    .min(self.uplink_gbps()),
            }
        }
    }

    /// The network path from `src` to `dst`, hops included. The scalar
    /// facts come from [`path_info`](Self::path_info), so the two views
    /// cannot drift.
    pub fn path(&self, src: NodeId, dst: NodeId) -> Path {
        let info = self.path_info(src, dst);
        let hops = if src == dst {
            Vec::new()
        } else {
            let r_src = self.rack_of(src);
            let r_dst = self.rack_of(dst);
            if r_src == r_dst {
                vec![self.tor_of_rack(r_src)]
            } else {
                vec![
                    self.tor_of_rack(r_src),
                    self.agg_switch(),
                    self.tor_of_rack(r_dst),
                ]
            }
        };
        Path {
            hops,
            latency_s: info.latency_s,
            bottleneck_gbps: info.bottleneck_gbps,
        }
    }

    /// Appends the components involved in a transfer from `src` to `dst`
    /// to `out` (not cleared) — the allocation-free form of
    /// [`transfer_footprint`](Self::transfer_footprint).
    pub fn transfer_footprint_into(&self, src: NodeId, dst: NodeId, out: &mut Vec<ComponentId>) {
        out.push(ComponentId::Node(src));
        out.push(ComponentId::Node(dst));
        out.push(ComponentId::Nic(src));
        out.push(ComponentId::Nic(dst));
        if src != dst {
            let r_src = self.rack_of(src);
            let r_dst = self.rack_of(dst);
            if r_src == r_dst {
                out.push(ComponentId::Switch(self.tor_of_rack(r_src)));
            } else {
                out.push(ComponentId::Switch(self.tor_of_rack(r_src)));
                out.push(ComponentId::Switch(self.agg_switch()));
                out.push(ComponentId::Switch(self.tor_of_rack(r_dst)));
            }
        }
    }

    /// The set of components involved in a transfer from `src` to `dst`
    /// (the paper's §4.2 interaction example: the two nodes, the two NICs,
    /// and the switches on the path — everything else is unaffected).
    pub fn transfer_footprint(&self, src: NodeId, dst: NodeId) -> Vec<ComponentId> {
        let mut out = Vec::with_capacity(7);
        self.transfer_footprint_into(src, dst, &mut out);
        out
    }

    /// Splits the topology into simulation partitions at `granularity`.
    ///
    /// Partitions are contiguous rack spans (never splitting a rack), so
    /// with rack-major node IDs each partition owns a dense index range —
    /// the PR 7 arenas shard by slicing. The returned
    /// [`min_cross_latency_s`](Partitioning::min_cross_latency_s) is the
    /// latency floor of any network path leaving a partition (always an
    /// inter-rack path: NIC → ToR → agg → ToR → NIC), which lower-bounds
    /// every cross-partition interaction and therefore defines the
    /// conservative lookahead for partitioned execution.
    pub fn partition_by(&self, granularity: PartitionGranularity) -> Partitioning {
        let racks = self.spec.racks;
        let rack_ranges: Vec<std::ops::Range<usize>> = match granularity {
            PartitionGranularity::Rack => (0..racks).map(|r| r..r + 1).collect(),
            PartitionGranularity::Pod { racks_per_pod } => {
                assert!(racks_per_pod > 0, "racks_per_pod must be positive");
                (0..racks)
                    .step_by(racks_per_pod)
                    .map(|r| r..(r + racks_per_pod).min(racks))
                    .collect()
            }
            PartitionGranularity::PowerDomain { racks_per_domain } => {
                assert!(racks_per_domain > 0, "racks_per_domain must be positive");
                (0..racks)
                    .step_by(racks_per_domain)
                    .map(|r| r..(r + racks_per_domain).min(racks))
                    .collect()
            }
            PartitionGranularity::Count(n) => {
                assert!(n > 0, "partition count must be positive");
                let n = n.min(racks);
                // Balanced contiguous split: partition i gets racks
                // [i*racks/n, (i+1)*racks/n) — sizes differ by at most 1.
                (0..n)
                    .map(|i| (i * racks / n)..((i + 1) * racks / n))
                    .collect()
            }
        };
        let per_rack = self.spec.nodes_per_rack;
        let node_ranges = rack_ranges
            .iter()
            .map(|r| r.start * per_rack..r.end * per_rack)
            .collect();
        // The cheapest path that can leave a whole-rack partition is any
        // inter-rack path; intra-rack and same-node paths never cross.
        let min_cross_latency_s = self.spec.min_cross_latency_s();
        Partitioning {
            rack_ranges,
            node_ranges,
            min_cross_latency_s,
        }
    }
}

/// How to group a topology's racks into simulation partitions. All
/// granularities keep racks whole: a rack is the indivisible unit of
/// simulation state, so cross-partition traffic is always inter-rack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionGranularity {
    /// One partition per rack — the finest split.
    Rack,
    /// Contiguous pods of `racks_per_pod` racks (last pod may be short).
    Pod {
        /// Racks per pod.
        racks_per_pod: usize,
    },
    /// Contiguous power domains of `racks_per_domain` racks — the same
    /// contiguous-span shape chaos `PowerDomainLoss` faults use, so a
    /// domain-level split keeps each fault's blast radius within one
    /// partition when the domain sizes match.
    PowerDomain {
        /// Racks per power domain.
        racks_per_domain: usize,
    },
    /// Exactly `n` partitions (clamped to the rack count), balanced to
    /// within one rack — the shape behind a `--partitions N` knob.
    Count(usize),
}

/// A topology split into partitions: aligned rack/node index ranges plus
/// the latency floor for anything crossing between them.
#[derive(Debug, Clone, PartialEq)]
pub struct Partitioning {
    /// Rack span of each partition: contiguous, disjoint, covering, in
    /// rack order.
    pub rack_ranges: Vec<std::ops::Range<usize>>,
    /// Node-ID span of each partition (rack-major dense IDs), aligned
    /// index-for-index with [`rack_ranges`](Self::rack_ranges).
    pub node_ranges: Vec<std::ops::Range<usize>>,
    /// Minimum one-way latency of any network path between two different
    /// partitions, in seconds: the conservative-lookahead floor.
    pub min_cross_latency_s: f64,
}

impl Partitioning {
    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.rack_ranges.len()
    }

    /// True when there is only the trivial single partition... which
    /// never happens: every topology has at least one rack, so at least
    /// one partition. Provided for clippy's `len` convention.
    pub fn is_empty(&self) -> bool {
        self.rack_ranges.is_empty()
    }

    /// The partition owning `rack`.
    pub fn part_of_rack(&self, rack: usize) -> usize {
        self.rack_ranges
            .iter()
            .position(|r| r.contains(&rack))
            .expect("rack within topology")
    }

    /// The partition owning dense node index `node`.
    pub fn part_of_node(&self, node: usize) -> usize {
        self.node_ranges
            .iter()
            .position(|r| r.contains(&node))
            .expect("node within topology")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    fn spec(racks: usize, per_rack: usize) -> TopologySpec {
        TopologySpec {
            racks,
            nodes_per_rack: per_rack,
            node: catalog::node_storage_server(catalog::hdd_7200_4t(), 4, catalog::nic_10g()),
            tor: catalog::switch_tor_48x10g(),
            agg: catalog::switch_agg_32x40g(),
            oversubscription: 4.0,
        }
    }

    #[test]
    fn rack_assignment_is_dense_rack_major() {
        let t = spec(3, 10).build();
        assert_eq!(t.node_count(), 30);
        assert_eq!(t.rack_of(NodeId(0)), 0);
        assert_eq!(t.rack_of(NodeId(9)), 0);
        assert_eq!(t.rack_of(NodeId(10)), 1);
        assert_eq!(t.rack_of(NodeId(29)), 2);
        assert!(t.same_rack(NodeId(3), NodeId(7)));
        assert!(!t.same_rack(NodeId(9), NodeId(10)));
    }

    #[test]
    fn intra_rack_path_is_one_hop() {
        let t = spec(3, 10).build();
        let p = t.path(NodeId(0), NodeId(5));
        assert_eq!(p.hops, vec![SwitchId(0)]);
        assert_eq!(p.bottleneck_gbps, 10.0);
    }

    #[test]
    fn inter_rack_path_crosses_agg_and_is_oversubscribed() {
        let t = spec(3, 10).build();
        let p = t.path(NodeId(0), NodeId(25));
        assert_eq!(p.hops, vec![SwitchId(0), SwitchId(3), SwitchId(2)]);
        // Uplink: 10 nodes × 10G / 4 = 25G, NIC bottleneck 10G still wins.
        assert_eq!(p.bottleneck_gbps, 10.0);
        assert!(p.latency_s > t.path(NodeId(0), NodeId(5)).latency_s);
    }

    #[test]
    fn heavy_oversubscription_throttles_inter_rack() {
        let mut s = spec(2, 20);
        s.oversubscription = 40.0; // uplink: 20×10G/40 = 5G < NIC 10G
        let t = s.build();
        let p = t.path(NodeId(0), NodeId(39));
        assert_eq!(p.bottleneck_gbps, 5.0);
        // Intra-rack unaffected.
        assert_eq!(t.path(NodeId(0), NodeId(1)).bottleneck_gbps, 10.0);
    }

    #[test]
    fn local_path_is_free() {
        let t = spec(1, 4).build();
        let p = t.path(NodeId(2), NodeId(2));
        assert!(p.hops.is_empty());
        assert_eq!(p.latency_s, 0.0);
        assert_eq!(p.transfer_time(1 << 30), 0.0);
    }

    #[test]
    fn component_enumeration_is_complete_and_stable() {
        let t = spec(2, 3).build();
        let comps = t.components();
        // 6 nodes + 6*4 disks + 6 NICs + 3 switches.
        assert_eq!(comps.len(), 6 + 24 + 6 + 3);
        assert_eq!(comps, t.components(), "enumeration must be stable");
        assert!(comps.contains(&ComponentId::Switch(t.agg_switch())));
    }

    #[test]
    fn transfer_footprint_matches_paper_example() {
        // §4.2: an intra-rack transfer touches the two nodes, their
        // disks/NICs and the ToR — nothing in other racks.
        let t = spec(2, 5).build();
        let fp = t.transfer_footprint(NodeId(0), NodeId(1));
        assert!(fp.contains(&ComponentId::Switch(SwitchId(0))));
        assert!(!fp
            .iter()
            .any(|c| matches!(c, ComponentId::Switch(s) if *s == t.agg_switch())));
        let fp2 = t.transfer_footprint(NodeId(0), NodeId(5));
        assert!(fp2
            .iter()
            .any(|c| matches!(c, ComponentId::Switch(s) if *s == t.agg_switch())));
    }

    #[test]
    fn transfer_time_unloaded() {
        let t = spec(1, 2).build();
        let p = t.path(NodeId(0), NodeId(1));
        // 1 GB over 10G ≈ 0.8 s.
        let secs = p.transfer_time(1_000_000_000);
        assert!((secs - 0.8).abs() < 0.01, "got {secs}");
    }

    #[test]
    #[should_panic(expected = "exceeds ToR ports")]
    fn too_many_nodes_per_rack_rejected() {
        let _ = spec(1, 60).build();
    }

    #[test]
    fn path_info_and_footprint_into_agree_with_allocating_forms() {
        let t = spec(3, 4).build();
        for src in t.nodes() {
            for dst in t.nodes() {
                let p = t.path(src, dst);
                let info = t.path_info(src, dst);
                assert_eq!(p.latency_s, info.latency_s);
                assert_eq!(p.bottleneck_gbps, info.bottleneck_gbps);
                assert_eq!(p.transfer_time(1 << 20), info.transfer_time(1 << 20));
                let mut fp = Vec::new();
                t.transfer_footprint_into(src, dst, &mut fp);
                assert_eq!(fp, t.transfer_footprint(src, dst));
            }
        }
    }

    #[test]
    fn components_iter_streams_the_same_census() {
        let t = spec(2, 3).build();
        assert_eq!(t.components_iter().collect::<Vec<_>>(), t.components());
        assert_eq!(t.components_iter().count(), 6 + 24 + 6 + 3);
    }

    #[test]
    fn partition_by_rack_pod_and_count() {
        let t = spec(7, 4).build();
        let by_rack = t.partition_by(PartitionGranularity::Rack);
        assert_eq!(by_rack.len(), 7);
        assert_eq!(by_rack.rack_ranges[3], 3..4);
        assert_eq!(by_rack.node_ranges[3], 12..16);

        let by_pod = t.partition_by(PartitionGranularity::Pod { racks_per_pod: 3 });
        assert_eq!(by_pod.rack_ranges, vec![0..3, 3..6, 6..7]);
        assert_eq!(by_pod.node_ranges, vec![0..12, 12..24, 24..28]);

        let by_dom = t.partition_by(PartitionGranularity::PowerDomain {
            racks_per_domain: 4,
        });
        assert_eq!(by_dom.rack_ranges, vec![0..4, 4..7]);

        let by_count = t.partition_by(PartitionGranularity::Count(2));
        assert_eq!(by_count.rack_ranges, vec![0..3, 3..7]);
        // Clamped to the rack count; never an empty partition.
        let many = t.partition_by(PartitionGranularity::Count(100));
        assert_eq!(many.len(), 7);
        assert!(many.rack_ranges.iter().all(|r| !r.is_empty()));
    }

    #[test]
    fn partitioning_covers_and_routes_ownership() {
        let t = spec(5, 3).build();
        for g in [
            PartitionGranularity::Rack,
            PartitionGranularity::Pod { racks_per_pod: 2 },
            PartitionGranularity::Count(3),
            PartitionGranularity::Count(1),
        ] {
            let p = t.partition_by(g);
            assert!(!p.is_empty());
            // Contiguous + covering in both index spaces.
            assert_eq!(p.rack_ranges.first().unwrap().start, 0);
            assert_eq!(p.rack_ranges.last().unwrap().end, 5);
            assert_eq!(p.node_ranges.last().unwrap().end, t.node_count());
            for w in p.rack_ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
            for rack in 0..5 {
                let part = p.part_of_rack(rack);
                assert!(p.rack_ranges[part].contains(&rack));
            }
            for node in 0..t.node_count() {
                assert_eq!(p.part_of_node(node), p.part_of_rack(node / 3));
            }
        }
    }

    #[test]
    fn cross_partition_latency_floor_is_the_inter_rack_path() {
        let t = spec(4, 2).build();
        let p = t.partition_by(PartitionGranularity::Count(2));
        assert!(p.min_cross_latency_s > 0.0);
        // Any inter-rack path matches the floor; intra-rack is cheaper.
        let inter = t.path_info(NodeId(0), NodeId(7)).latency_s;
        assert_eq!(p.min_cross_latency_s, inter);
        assert!(t.path_info(NodeId(0), NodeId(1)).latency_s < inter);
    }

    #[test]
    fn display_component_ids() {
        assert_eq!(format!("{}", ComponentId::Node(NodeId(3))), "node3");
        assert_eq!(
            format!(
                "{}",
                ComponentId::Disk(DiskId {
                    node: NodeId(1),
                    slot: 2
                })
            ),
            "node1.disk2"
        );
    }
}
