//! # wt-hw — hardware component models (paper §4.5)
//!
//! Every hardware axis the paper's what-if questions range over is a spec
//! type here: disks ([`disk`]), NICs and switches ([`net`]), CPUs and memory
//! ([`node`]), full rack/datacenter topologies ([`topology`]), performance
//! degradation faults a.k.a. *limpware* ([`limpware`], paper ref \[5\]), and
//! the cost side of every trade-off ([`cost`]).
//!
//! Specs are plain serializable data: failure and repair behavior is
//! expressed as [`wt_dist::Dist`] values (Weibull disk lifetimes, lognormal
//! repairs, …), and the *simulation* of failures happens in `wt-cluster`.
//! A [`catalog`] of realistically parameterized parts — seeded from the
//! published field studies the paper cites — makes scenarios concise.

pub mod catalog;
pub mod cost;
pub mod disk;
pub mod limpware;
pub mod net;
pub mod node;
pub mod topology;

pub use cost::CostModel;
pub use disk::{DiskClass, DiskSpec};
pub use limpware::LimpwareSpec;
pub use net::{NicSpec, SwitchSpec};
pub use node::{CpuSpec, MemSpec, NodeSpec};
pub use topology::{
    ComponentId, DiskId, NodeId, PartitionGranularity, Partitioning, Path, PathInfo, SwitchId,
    Topology, TopologySpec,
};
