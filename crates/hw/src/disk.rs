//! Storage device models.
//!
//! A [`DiskSpec`] captures the performance envelope (sequential bandwidth,
//! random IOPS, media latency), the reliability behavior (time-to-failure
//! and replacement-time distributions — Weibull and lognormal respectively,
//! per the field studies the paper cites in §2.2/§4.5), and the cost side
//! (purchase price, power draw).

use serde::{Deserialize, Serialize};
use wt_dist::Dist;

/// The broad storage technology class; determines which performance knobs
/// dominate (seek-bound vs. flash-channel-bound).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DiskClass {
    /// Spinning rust.
    Hdd,
    /// SATA/SAS attached flash.
    SataSsd,
    /// PCIe attached flash.
    NvmeSsd,
}

/// A storage device model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiskSpec {
    /// Catalog name, e.g. `"hdd-7200-4t"`.
    pub name: String,
    /// Technology class.
    pub class: DiskClass,
    /// Usable capacity in GB.
    pub capacity_gb: f64,
    /// Sequential read bandwidth, MB/s.
    pub seq_read_mbps: f64,
    /// Sequential write bandwidth, MB/s.
    pub seq_write_mbps: f64,
    /// Random 4K read operations per second.
    pub read_iops: f64,
    /// Random 4K write operations per second.
    pub write_iops: f64,
    /// Per-operation media latency floor, seconds.
    pub latency_s: f64,
    /// Time-to-failure distribution, seconds.
    pub ttf: Dist,
    /// Replacement/repair-time distribution, seconds (physical swap; data
    /// re-replication is a *software* concern modeled in `wt-sw`).
    pub repair: Dist,
    /// Purchase price, USD.
    pub capex_usd: f64,
    /// Active power draw, watts.
    pub power_watts: f64,
}

impl DiskSpec {
    /// Service time for a request of `bytes` bytes that is `sequential` or
    /// random, reading or writing. The model is the standard
    /// latency + transfer + per-op cost decomposition: good enough to
    /// reproduce who-wins comparisons between device classes, which is what
    /// the wind tunnel needs (§3 "as long as the key resources are
    /// simulated").
    pub fn service_time(&self, bytes: u64, sequential: bool, write: bool) -> f64 {
        let bw_mbps = if write {
            self.seq_write_mbps
        } else {
            self.seq_read_mbps
        };
        let transfer = bytes as f64 / (bw_mbps * 1e6);
        if sequential {
            self.latency_s + transfer
        } else {
            let iops = if write {
                self.write_iops
            } else {
                self.read_iops
            };
            // Random ops pay the per-op cost for each 4K page touched.
            let pages = (bytes as f64 / 4096.0).ceil().max(1.0);
            self.latency_s + pages / iops
        }
    }

    /// Annualized failure rate implied by the TTF distribution's mean
    /// (fraction of a large population expected to fail per year).
    pub fn afr(&self) -> f64 {
        let mean_years = self.ttf.mean() / (365.0 * 86_400.0);
        1.0 / mean_years
    }

    /// Cost per usable GB.
    pub fn usd_per_gb(&self) -> f64 {
        self.capex_usd / self.capacity_gb
    }
}

#[cfg(test)]
mod tests {
    use crate::catalog;

    #[test]
    fn service_time_sequential_scales_with_size() {
        let d = catalog::hdd_7200_4t();
        let small = d.service_time(1 << 20, true, false);
        let big = d.service_time(100 << 20, true, false);
        assert!(
            big > small * 50.0,
            "sequential time should scale: {small} vs {big}"
        );
    }

    #[test]
    fn random_read_dominated_by_iops_on_hdd() {
        let d = catalog::hdd_7200_4t();
        // A 4K random read on an HDD takes ~ 1/IOPS plus latency — milliseconds.
        let t = d.service_time(4096, false, false);
        assert!(t > 1e-3, "HDD random read should be ms-scale, got {t}");
        // The same read on NVMe is tens of microseconds.
        let nvme = catalog::ssd_nvme_2t();
        let t2 = nvme.service_time(4096, false, false);
        assert!(t2 < 1e-3, "NVMe random read should be sub-ms, got {t2}");
        assert!(
            t / t2 > 20.0,
            "NVMe should beat HDD by >20x on random reads"
        );
    }

    #[test]
    fn ssd_and_hdd_close_on_sequential() {
        let hdd = catalog::hdd_7200_4t();
        let ssd = catalog::ssd_sata_1t();
        let th = hdd.service_time(64 << 20, true, false);
        let ts = ssd.service_time(64 << 20, true, false);
        // SSD faster, but within a single order of magnitude sequentially.
        assert!(ts < th && th / ts < 10.0);
    }

    #[test]
    fn afr_matches_field_study_ballpark() {
        // Schroeder–Gibson: observed ARR 1-5%/yr in the field.
        let d = catalog::hdd_7200_4t();
        let afr = d.afr();
        assert!((0.005..0.10).contains(&afr), "AFR out of ballpark: {afr}");
    }

    #[test]
    fn cost_per_gb_ordering() {
        assert!(catalog::hdd_7200_4t().usd_per_gb() < catalog::ssd_sata_1t().usd_per_gb());
        assert!(catalog::ssd_sata_1t().usd_per_gb() <= catalog::ssd_nvme_2t().usd_per_gb());
    }

    #[test]
    fn write_uses_write_path() {
        let d = catalog::ssd_sata_1t();
        let r = d.service_time(1 << 20, true, false);
        let w = d.service_time(1 << 20, true, true);
        assert!(w >= r, "writes no faster than reads on this part");
    }
}
