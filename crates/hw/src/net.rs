//! Network component models: NICs and switches.
//!
//! The paper's §1 worked example turns on exactly these knobs — "the latency
//! of the repair process can be reduced by using a faster network" — and
//! §2.2 notes that analytical models usually drop network-component failures
//! to stay tractable. Here both the performance envelope and the failure
//! behavior of NICs and switches are first-class.

use serde::{Deserialize, Serialize};
use wt_dist::Dist;

/// A network interface card model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NicSpec {
    /// Catalog name, e.g. `"nic-10g"`.
    pub name: String,
    /// Line rate in Gbit/s.
    pub bandwidth_gbps: f64,
    /// Per-packet/first-byte latency, seconds.
    pub latency_s: f64,
    /// Time-to-failure distribution, seconds.
    pub ttf: Dist,
    /// Repair-time distribution, seconds.
    pub repair: Dist,
    /// Purchase price, USD.
    pub capex_usd: f64,
    /// Power draw, watts.
    pub power_watts: f64,
}

impl NicSpec {
    /// Time to push `bytes` through this NIC at line rate.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        self.latency_s + bytes as f64 * 8.0 / (self.bandwidth_gbps * 1e9)
    }
}

/// A switch model (used for both top-of-rack and aggregation roles).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwitchSpec {
    /// Catalog name, e.g. `"tor-48x10g"`.
    pub name: String,
    /// Number of ports.
    pub ports: u32,
    /// Per-port bandwidth in Gbit/s.
    pub port_bandwidth_gbps: f64,
    /// Switching latency per hop, seconds.
    pub latency_s: f64,
    /// Time-to-failure distribution, seconds.
    pub ttf: Dist,
    /// Repair-time distribution, seconds.
    pub repair: Dist,
    /// Purchase price, USD.
    pub capex_usd: f64,
    /// Power draw, watts.
    pub power_watts: f64,
}

impl SwitchSpec {
    /// Aggregate backplane bandwidth, Gbit/s.
    pub fn backplane_gbps(&self) -> f64 {
        f64::from(self.ports) * self.port_bandwidth_gbps
    }
}

#[cfg(test)]
mod tests {
    use crate::catalog;

    #[test]
    fn transfer_time_scales_inverse_with_bandwidth() {
        let g1 = catalog::nic_1g();
        let g10 = catalog::nic_10g();
        let bytes = 1u64 << 30; // 1 GiB
        let t1 = g1.transfer_time(bytes);
        let t10 = g10.transfer_time(bytes);
        assert!(
            (t1 / t10 - 10.0).abs() < 0.5,
            "10G should be ~10x faster: {t1} vs {t10}"
        );
    }

    #[test]
    fn gigabyte_on_1g_takes_about_8_seconds() {
        let t = catalog::nic_1g().transfer_time(1_000_000_000);
        assert!((t - 8.0).abs() < 0.1, "1 GB over 1 Gb/s ≈ 8 s, got {t}");
    }

    #[test]
    fn switch_backplane() {
        let tor = catalog::switch_tor_48x10g();
        assert_eq!(tor.ports, 48);
        assert!((tor.backplane_gbps() - 480.0).abs() < 1e-9);
    }

    #[test]
    fn latency_floor_applies_to_tiny_transfers() {
        let nic = catalog::nic_10g();
        let t = nic.transfer_time(1);
        assert!(t >= nic.latency_s);
    }
}
