//! Server node models: CPU, memory, chassis.

use crate::disk::DiskSpec;
use crate::net::NicSpec;
use serde::{Deserialize, Serialize};
use wt_dist::Dist;

/// A CPU model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuSpec {
    /// Catalog name.
    pub name: String,
    /// Physical cores.
    pub cores: u32,
    /// Base clock, GHz.
    pub ghz: f64,
    /// Purchase price, USD.
    pub capex_usd: f64,
    /// TDP, watts.
    pub power_watts: f64,
}

impl CpuSpec {
    /// A crude aggregate compute capacity figure (core-GHz), used to scale
    /// CPU service demands across SKUs.
    pub fn capacity(&self) -> f64 {
        f64::from(self.cores) * self.ghz
    }
}

/// A memory configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemSpec {
    /// Installed DRAM, GB.
    pub capacity_gb: f64,
    /// Aggregate bandwidth, GB/s.
    pub bandwidth_gbps: f64,
    /// Purchase price, USD.
    pub capex_usd: f64,
    /// Power draw, watts.
    pub power_watts: f64,
}

/// A complete server: CPU, memory, disks, NIC, chassis, plus node-level
/// failure behavior (kernel panics, PSU faults, anything that takes the
/// whole machine down rather than one component).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Catalog name.
    pub name: String,
    /// CPU model.
    pub cpu: CpuSpec,
    /// Memory configuration.
    pub mem: MemSpec,
    /// Attached disks (homogeneous or mixed).
    pub disks: Vec<DiskSpec>,
    /// Network interface.
    pub nic: NicSpec,
    /// Whole-node time-to-failure, seconds.
    pub ttf: Dist,
    /// Whole-node repair (reboot/re-image/replace), seconds.
    pub repair: Dist,
    /// Chassis/motherboard price on top of the parts, USD.
    pub chassis_capex_usd: f64,
    /// Idle power of the chassis (fans, board), watts.
    pub base_power_watts: f64,
}

impl NodeSpec {
    /// Total purchase price of one node.
    pub fn capex_usd(&self) -> f64 {
        self.chassis_capex_usd
            + self.cpu.capex_usd
            + self.mem.capex_usd
            + self.nic.capex_usd
            + self.disks.iter().map(|d| d.capex_usd).sum::<f64>()
    }

    /// Peak power draw of one node, watts.
    pub fn power_watts(&self) -> f64 {
        self.base_power_watts
            + self.cpu.power_watts
            + self.mem.power_watts
            + self.nic.power_watts
            + self.disks.iter().map(|d| d.power_watts).sum::<f64>()
    }

    /// Total raw storage capacity, GB.
    pub fn storage_gb(&self) -> f64 {
        self.disks.iter().map(|d| d.capacity_gb).sum()
    }
}

#[cfg(test)]
mod tests {
    use crate::catalog;

    #[test]
    fn node_capex_is_sum_of_parts() {
        let n = catalog::node_storage_server(catalog::hdd_7200_4t(), 12, catalog::nic_10g());
        let parts = n.chassis_capex_usd
            + n.cpu.capex_usd
            + n.mem.capex_usd
            + n.nic.capex_usd
            + 12.0 * catalog::hdd_7200_4t().capex_usd;
        assert!((n.capex_usd() - parts).abs() < 1e-9);
    }

    #[test]
    fn storage_capacity() {
        let n = catalog::node_storage_server(catalog::hdd_7200_4t(), 12, catalog::nic_10g());
        assert!((n.storage_gb() - 48_000.0).abs() < 1e-9);
    }

    #[test]
    fn power_is_positive_and_bounded() {
        let n = catalog::node_storage_server(catalog::ssd_sata_1t(), 8, catalog::nic_40g());
        let w = n.power_watts();
        assert!(
            (100.0..2000.0).contains(&w),
            "implausible node power: {w} W"
        );
    }

    #[test]
    fn cpu_capacity() {
        let c = catalog::cpu_2s_16c();
        assert!(c.capacity() > 0.0);
        assert_eq!(c.capacity(), f64::from(c.cores) * c.ghz);
    }
}
