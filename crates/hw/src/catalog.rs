//! A catalog of realistically parameterized parts (2014-era, matching the
//! paper's vintage).
//!
//! Reliability parameters follow the field studies the paper cites:
//!
//! * Disk time-between-replacements: **Weibull with decreasing hazard
//!   (shape ≈ 0.7–0.8)** and a population ARR of ~3%/yr, per Schroeder &
//!   Gibson (FAST'07) — *not* the exponential with the datasheet MTTF.
//! * Repair times: **lognormal**, per Schroeder & Gibson (TDSC'10).
//! * Server-level ARR ~8%/yr, per Vishwanath & Nagappan (SoCC'10).
//!
//! Prices and performance are representative list values; experiments only
//! rely on their *relative* ordering (SSD faster and dearer per GB than
//! HDD, 10G ≈ 10×1G, …).

use crate::disk::{DiskClass, DiskSpec};
use crate::net::{NicSpec, SwitchSpec};
use crate::node::{CpuSpec, MemSpec, NodeSpec};
use wt_dist::Dist;

const YEAR: f64 = 365.0 * 86_400.0;
const HOUR: f64 = 3600.0;

/// Disk lifetime: Weibull, shape 0.8, ARR ≈ 3%/yr (mean TTF ≈ 33 years —
/// remember ARR is a population average, not an individual device's life).
fn disk_ttf() -> Dist {
    Dist::weibull_mean(0.8, 33.0 * YEAR)
}

/// Physical disk swap: lognormal around 4 hours with heavy spread.
fn disk_repair() -> Dist {
    Dist::lognormal_mean_cv(4.0 * HOUR, 1.5)
}

/// 4 TB 7200 RPM nearline SATA HDD.
pub fn hdd_7200_4t() -> DiskSpec {
    DiskSpec {
        name: "hdd-7200-4t".into(),
        class: DiskClass::Hdd,
        capacity_gb: 4_000.0,
        seq_read_mbps: 170.0,
        seq_write_mbps: 160.0,
        read_iops: 120.0,
        write_iops: 110.0,
        latency_s: 4.2e-3,
        ttf: disk_ttf(),
        repair: disk_repair(),
        capex_usd: 180.0,
        power_watts: 9.0,
    }
}

/// 1 TB SATA SSD.
pub fn ssd_sata_1t() -> DiskSpec {
    DiskSpec {
        name: "ssd-sata-1t".into(),
        class: DiskClass::SataSsd,
        capacity_gb: 1_000.0,
        seq_read_mbps: 520.0,
        seq_write_mbps: 480.0,
        read_iops: 90_000.0,
        write_iops: 70_000.0,
        latency_s: 60e-6,
        // Flash wears rather than crashes: higher shape, similar ARR.
        ttf: Dist::weibull_mean(1.2, 40.0 * YEAR),
        repair: disk_repair(),
        capex_usd: 520.0,
        power_watts: 4.0,
    }
}

/// 2 TB NVMe SSD.
pub fn ssd_nvme_2t() -> DiskSpec {
    DiskSpec {
        name: "ssd-nvme-2t".into(),
        class: DiskClass::NvmeSsd,
        capacity_gb: 2_000.0,
        seq_read_mbps: 2_800.0,
        seq_write_mbps: 1_900.0,
        read_iops: 450_000.0,
        write_iops: 180_000.0,
        latency_s: 20e-6,
        ttf: Dist::weibull_mean(1.2, 40.0 * YEAR),
        repair: disk_repair(),
        capex_usd: 1_400.0,
        power_watts: 8.0,
    }
}

/// NIC lifetime: exponential, MTTF 15 years; NIC swap ~1 h lognormal.
fn nic_reliability() -> (Dist, Dist) {
    (
        Dist::exponential_mean(15.0 * YEAR),
        Dist::lognormal_mean_cv(1.0 * HOUR, 1.0),
    )
}

/// 1 GbE NIC.
pub fn nic_1g() -> NicSpec {
    let (ttf, repair) = nic_reliability();
    NicSpec {
        name: "nic-1g".into(),
        bandwidth_gbps: 1.0,
        latency_s: 50e-6,
        ttf,
        repair,
        capex_usd: 40.0,
        power_watts: 3.0,
    }
}

/// 10 GbE NIC.
pub fn nic_10g() -> NicSpec {
    let (ttf, repair) = nic_reliability();
    NicSpec {
        name: "nic-10g".into(),
        bandwidth_gbps: 10.0,
        latency_s: 10e-6,
        ttf,
        repair,
        capex_usd: 350.0,
        power_watts: 8.0,
    }
}

/// 40 GbE NIC.
pub fn nic_40g() -> NicSpec {
    let (ttf, repair) = nic_reliability();
    NicSpec {
        name: "nic-40g".into(),
        bandwidth_gbps: 40.0,
        latency_s: 5e-6,
        ttf,
        repair,
        capex_usd: 900.0,
        power_watts: 12.0,
    }
}

/// 48-port 10G top-of-rack switch.
pub fn switch_tor_48x10g() -> SwitchSpec {
    SwitchSpec {
        name: "tor-48x10g".into(),
        ports: 48,
        port_bandwidth_gbps: 10.0,
        latency_s: 2e-6,
        ttf: Dist::exponential_mean(10.0 * YEAR),
        repair: Dist::lognormal_mean_cv(2.0 * HOUR, 1.0),
        capex_usd: 8_000.0,
        power_watts: 250.0,
    }
}

/// 48-port 1G top-of-rack switch (the "slow network" arm of §4.2's example).
pub fn switch_tor_48x1g() -> SwitchSpec {
    SwitchSpec {
        name: "tor-48x1g".into(),
        ports: 48,
        port_bandwidth_gbps: 1.0,
        latency_s: 4e-6,
        ttf: Dist::exponential_mean(10.0 * YEAR),
        repair: Dist::lognormal_mean_cv(2.0 * HOUR, 1.0),
        capex_usd: 1_500.0,
        power_watts: 120.0,
    }
}

/// 32-port 40G aggregation switch.
pub fn switch_agg_32x40g() -> SwitchSpec {
    SwitchSpec {
        name: "agg-32x40g".into(),
        ports: 32,
        port_bandwidth_gbps: 40.0,
        latency_s: 2e-6,
        ttf: Dist::exponential_mean(10.0 * YEAR),
        repair: Dist::lognormal_mean_cv(4.0 * HOUR, 1.0),
        capex_usd: 25_000.0,
        power_watts: 450.0,
    }
}

/// Dual-socket 16-core server CPU.
pub fn cpu_2s_16c() -> CpuSpec {
    CpuSpec {
        name: "2s-16c-2.6ghz".into(),
        cores: 16,
        ghz: 2.6,
        capex_usd: 2_400.0,
        power_watts: 190.0,
    }
}

/// DDR3 memory kit of the given size.
pub fn mem_ddr3(capacity_gb: f64) -> MemSpec {
    MemSpec {
        capacity_gb,
        bandwidth_gbps: 51.2,
        capex_usd: capacity_gb * 10.0,
        power_watts: 2.0 + capacity_gb * 0.05,
    }
}

/// A storage server: the given disk model × `disk_count`, 64 GB RAM,
/// the given NIC. Node-level ARR ~8%/yr (Vishwanath–Nagappan), repairs
/// lognormal around 30 minutes (reboot/re-image).
pub fn node_storage_server(disk: DiskSpec, disk_count: usize, nic: NicSpec) -> NodeSpec {
    NodeSpec {
        name: format!("storage-{}x{}-{}", disk_count, disk.name, nic.name),
        cpu: cpu_2s_16c(),
        mem: mem_ddr3(64.0),
        disks: vec![disk; disk_count],
        nic,
        ttf: Dist::weibull_mean(0.9, 12.5 * YEAR),
        repair: Dist::lognormal_mean_cv(0.5 * HOUR, 1.2),
        chassis_capex_usd: 1_200.0,
        base_power_watts: 60.0,
    }
}

/// A storage server with an explicit memory size (the memory-vs-storage
/// provisioning axis of experiment E4).
pub fn node_with_memory(disk: DiskSpec, disk_count: usize, nic: NicSpec, mem_gb: f64) -> NodeSpec {
    let mut node = node_storage_server(disk, disk_count, nic);
    node.mem = mem_ddr3(mem_gb);
    node.name = format!("{}-{}g", node.name, mem_gb);
    node
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disk_ttf_is_weibull_decreasing_hazard() {
        match hdd_7200_4t().ttf {
            Dist::Weibull { shape, .. } => assert!(shape < 1.0),
            other => panic!("expected Weibull, got {other:?}"),
        }
    }

    #[test]
    fn repairs_are_lognormal() {
        match hdd_7200_4t().repair {
            Dist::LogNormal { .. } => {}
            other => panic!("expected LogNormal, got {other:?}"),
        }
    }

    #[test]
    fn nic_speed_ladder() {
        assert!(nic_1g().bandwidth_gbps < nic_10g().bandwidth_gbps);
        assert!(nic_10g().bandwidth_gbps < nic_40g().bandwidth_gbps);
        assert!(nic_1g().capex_usd < nic_10g().capex_usd);
    }

    #[test]
    fn node_names_are_descriptive() {
        let n = node_storage_server(hdd_7200_4t(), 12, nic_10g());
        assert!(n.name.contains("hdd-7200-4t"));
        assert!(n.name.contains("nic-10g"));
    }

    #[test]
    fn node_with_memory_overrides_mem() {
        let n = node_with_memory(hdd_7200_4t(), 12, nic_10g(), 256.0);
        assert_eq!(n.mem.capacity_gb, 256.0);
        assert!(n.mem.capex_usd > mem_ddr3(64.0).capex_usd);
    }

    #[test]
    fn server_arr_ballpark() {
        // Mean node TTF ~12.5 years → ~8% ARR, matching the cloud hardware
        // reliability study.
        let n = node_storage_server(hdd_7200_4t(), 12, nic_10g());
        let arr = 1.0 / (n.ttf.mean() / (365.0 * 86_400.0));
        assert!((0.05..0.12).contains(&arr), "server ARR {arr}");
    }
}
