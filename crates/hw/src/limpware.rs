//! Limpware: hardware that degrades instead of failing (paper §4.5, citing
//! Do et al.'s SoCC'13 limplock study).
//!
//! A limping component stays "up" — so fail-stop detection and repair never
//! trigger — but serves at a fraction of its specified rate. The paper calls
//! reproducing this in practice hard and names modeling it an open problem;
//! in the wind tunnel it is one more stochastic component model.

use serde::{Deserialize, Serialize};
use wt_des::rng::Stream;
use wt_dist::Dist;

/// Which component kinds a limpware scenario can afflict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LimpTarget {
    /// Degraded disks (e.g. remapped-sector storms).
    Disk,
    /// Degraded NICs (e.g. renegotiated link speed — the canonical
    /// 1 Gb NIC stuck at 10 Mb).
    Nic,
}

/// A limpware injection model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LimpwareSpec {
    /// Component kind afflicted.
    pub target: LimpTarget,
    /// Probability that any given component of that kind is a limper.
    pub probability: f64,
    /// Distribution of the *slowdown factor* (≥ 1; a value of 100 means the
    /// component serves at 1/100 of spec).
    pub slowdown: Dist,
}

impl LimpwareSpec {
    /// The canonical degraded-NIC scenario: with probability `p` a NIC runs
    /// 10–1000× slower (log-uniform-ish via lognormal around 100×).
    pub fn degraded_nic(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        LimpwareSpec {
            target: LimpTarget::Nic,
            probability: p,
            slowdown: Dist::lognormal_mean_cv(100.0, 1.0),
        }
    }

    /// A degraded-disk scenario with a fixed slowdown factor.
    pub fn degraded_disk_fixed(p: f64, factor: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        assert!(factor >= 1.0, "slowdown factor must be >= 1");
        LimpwareSpec {
            target: LimpTarget::Disk,
            probability: p,
            slowdown: Dist::deterministic(factor),
        }
    }

    /// Rolls the dice for one component: `Some(slowdown)` if it limps.
    pub fn roll(&self, rng: &mut Stream) -> Option<f64> {
        if rng.chance(self.probability) {
            Some(self.slowdown.sample(rng).max(1.0))
        } else {
            None
        }
    }
}

/// Runtime degradation state for a set of components, built by rolling a
/// [`LimpwareSpec`] once per component at scenario setup.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LimpState {
    factors: Vec<f64>,
}

impl LimpState {
    /// Rolls `spec` for `count` components. Component `i` keeps factor
    /// `self.factor(i)` for the whole run.
    pub fn roll_all(spec: &LimpwareSpec, count: usize, rng: &mut Stream) -> Self {
        LimpState {
            factors: (0..count).map(|_| spec.roll(rng).unwrap_or(1.0)).collect(),
        }
    }

    /// All-healthy state for `count` components.
    pub fn healthy(count: usize) -> Self {
        LimpState {
            factors: vec![1.0; count],
        }
    }

    /// The slowdown factor of component `i` (1.0 = healthy). Indices the
    /// state was never rolled for are healthy by definition, so engines can
    /// query disk/NIC ids uniformly without sizing the state first.
    pub fn factor(&self, i: usize) -> f64 {
        self.factors.get(i).copied().unwrap_or(1.0)
    }

    /// Number of limping components.
    pub fn limper_count(&self) -> usize {
        self.factors.iter().filter(|&&f| f > 1.0).count()
    }

    /// Forces component `i` to limp at `factor` (for targeted experiments).
    pub fn inject(&mut self, i: usize, factor: f64) {
        assert!(factor >= 1.0);
        self.factors[i] = factor;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_probability_never_limps() {
        let spec = LimpwareSpec::degraded_nic(0.0);
        let mut rng = Stream::from_seed(1);
        for _ in 0..1000 {
            assert!(spec.roll(&mut rng).is_none());
        }
    }

    #[test]
    fn certain_probability_always_limps() {
        let spec = LimpwareSpec::degraded_disk_fixed(1.0, 50.0);
        let mut rng = Stream::from_seed(2);
        for _ in 0..100 {
            assert_eq!(spec.roll(&mut rng), Some(50.0));
        }
    }

    #[test]
    fn roll_rate_matches_probability() {
        let spec = LimpwareSpec::degraded_nic(0.1);
        let mut rng = Stream::from_seed(3);
        let hits = (0..20_000)
            .filter(|_| spec.roll(&mut rng).is_some())
            .count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.1).abs() < 0.01, "rate = {rate}");
    }

    #[test]
    fn slowdown_is_at_least_one() {
        let spec = LimpwareSpec::degraded_nic(1.0);
        let mut rng = Stream::from_seed(4);
        for _ in 0..1000 {
            assert!(spec.roll(&mut rng).unwrap() >= 1.0);
        }
    }

    #[test]
    fn limp_state_bookkeeping() {
        let spec = LimpwareSpec::degraded_disk_fixed(0.5, 10.0);
        let mut rng = Stream::from_seed(5);
        let state = LimpState::roll_all(&spec, 1000, &mut rng);
        let limpers = state.limper_count();
        assert!((400..600).contains(&limpers), "limpers = {limpers}");
        let healthy = LimpState::healthy(10);
        assert_eq!(healthy.limper_count(), 0);
        assert_eq!(healthy.factor(3), 1.0);
    }

    #[test]
    fn out_of_range_factor_is_healthy() {
        // Regression: `factor` used to panic past the rolled count; engines
        // index by component id and expect 1.0 for anything unrolled.
        let state = LimpState::healthy(3);
        assert_eq!(state.factor(2), 1.0);
        assert_eq!(state.factor(3), 1.0);
        assert_eq!(state.factor(usize::MAX), 1.0);
        let empty = LimpState::default();
        assert_eq!(empty.factor(0), 1.0);
    }

    #[test]
    fn targeted_injection() {
        let mut state = LimpState::healthy(5);
        state.inject(2, 100.0);
        assert_eq!(state.factor(2), 100.0);
        assert_eq!(state.limper_count(), 1);
    }
}
