//! Multi-tenant workload sets.
//!
//! §3's performance-SLA use case: "quantify the impact on existing
//! workloads when a new workload is added on a machine". A scenario holds a
//! list of [`TenantWorkload`]s; the experiment harness adds/removes tenants
//! between arms and compares per-tenant latency percentiles.

use crate::generator::OpenLoop;
use crate::mix::Mix;
use serde::{Deserialize, Serialize};

/// One tenant: a named workload with its own mix, arrival process, and SLA
/// expectation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TenantWorkload {
    /// Display name.
    pub name: String,
    /// Operation mix and keyspace.
    pub mix: Mix,
    /// Arrival process.
    pub arrivals: OpenLoop,
    /// Per-object size in bytes (for placement/repair accounting).
    pub object_bytes: u64,
    /// Total logical data the tenant stores, bytes — drives buffer-cache
    /// hit rates in the performance simulator.
    pub dataset_bytes: u64,
    /// Latency SLA this tenant bought: (quantile, seconds). E.g.
    /// `(0.95, 0.050)` = p95 under 50 ms.
    pub latency_sla: Option<(f64, f64)>,
}

impl TenantWorkload {
    /// A transactional tenant: YCSB-B at `rate` req/s over `keys` keys,
    /// p95 ≤ 50 ms.
    pub fn oltp(name: &str, rate: f64, keys: u64) -> Self {
        TenantWorkload {
            name: name.into(),
            mix: Mix::ycsb_b(keys),
            arrivals: OpenLoop::poisson(rate),
            object_bytes: 1 << 20,
            dataset_bytes: 2 << 40, // 2 TB
            latency_sla: Some((0.95, 0.050)),
        }
    }

    /// An analytics tenant: scan-heavy at `rate` req/s, no latency SLA.
    pub fn analytics(name: &str, rate: f64, keys: u64) -> Self {
        TenantWorkload {
            name: name.into(),
            mix: Mix::scan_heavy(keys),
            arrivals: OpenLoop::poisson(rate),
            object_bytes: 64 << 20,
            dataset_bytes: 20 << 40, // 20 TB
            latency_sla: None,
        }
    }

    /// Does `observed` seconds at the SLA quantile meet this tenant's SLA?
    /// Tenants without an SLA always pass.
    pub fn sla_met(&self, observed_at_quantile: f64) -> bool {
        match self.latency_sla {
            Some((_, bound)) => observed_at_quantile <= bound,
            None => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oltp_preset() {
        let t = TenantWorkload::oltp("shop", 200.0, 1_000_000);
        assert_eq!(t.name, "shop");
        assert!((t.arrivals.rate() - 200.0).abs() < 1e-9);
        assert_eq!(t.latency_sla, Some((0.95, 0.050)));
        assert!((t.mix.write_fraction() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn sla_check() {
        let t = TenantWorkload::oltp("shop", 10.0, 100);
        assert!(t.sla_met(0.049));
        assert!(!t.sla_met(0.051));
        let a = TenantWorkload::analytics("reports", 1.0, 100);
        assert!(a.sla_met(999.0), "no SLA always passes");
    }
}
