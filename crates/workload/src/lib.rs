//! # wt-workload — workload models for performance what-ifs (paper §3)
//!
//! The performance-SLA use case needs workload characterization: "it is
//! possible to build accurate models … by identifying and carefully
//! modeling the key characteristics (CPU, Disk I/O, network) of the system
//! under test". This crate provides those synthetic workloads:
//!
//! * [`request`] — the request alphabet (point reads/writes, scans) with
//!   size and key,
//! * [`zipf`] — Zipfian key popularity (the YCSB/Gray sampler),
//! * [`mix`] — operation mixes (YCSB A/B/C presets and custom),
//! * [`generator`] — open-loop (Poisson or arbitrary interarrival) and
//!   closed-loop (think-time) load generators,
//! * [`tenant`] — multi-tenant workload sets, the "what happens to tenant
//!   A's p99 when tenant B moves in" question,
//! * [`trace`] — request traces: record, persist, characterize (rate, mix,
//!   interarrival law, key skew) and synthesize matching workload models.

pub mod generator;
pub mod mix;
pub mod request;
pub mod tenant;
pub mod trace;
pub mod zipf;

pub use generator::{ClosedLoop, OpenLoop};
pub use mix::{Mix, OpKind};
pub use request::Request;
pub use tenant::TenantWorkload;
pub use trace::{Characterization, Trace, TraceEntry};
pub use zipf::Zipf;
