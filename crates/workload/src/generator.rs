//! Load generators: open-loop (arrivals keep coming regardless of
//! completions — how SLAs get blown) and closed-loop (a fixed client pool
//! with think time — how benchmarks are usually run).
//!
//! Generators produce *interarrival decisions*; the cluster simulator owns
//! the event queue and calls back into them.

use serde::{Deserialize, Serialize};
use wt_des::rng::Stream;
use wt_dist::Dist;

/// Open-loop arrivals with an arbitrary interarrival distribution
/// (exponential = Poisson arrivals).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OpenLoop {
    /// Interarrival time distribution, seconds.
    pub interarrival: Dist,
}

impl OpenLoop {
    /// Poisson arrivals at `rate` requests/second.
    pub fn poisson(rate: f64) -> Self {
        assert!(rate > 0.0);
        OpenLoop {
            interarrival: Dist::exponential(rate),
        }
    }

    /// Deterministic arrivals at `rate` requests/second.
    pub fn steady(rate: f64) -> Self {
        assert!(rate > 0.0);
        OpenLoop {
            interarrival: Dist::deterministic(1.0 / rate),
        }
    }

    /// Bursty arrivals: Poisson at `rate` but with hyperexponential
    /// interarrivals (squared coefficient of variation ≈ `scv` > 1).
    pub fn bursty(rate: f64, scv: f64) -> Self {
        assert!(rate > 0.0 && scv > 1.0);
        // Balanced two-phase hyperexponential matching mean and SCV.
        let mean = 1.0 / rate;
        let p = 0.5 * (1.0 + ((scv - 1.0) / (scv + 1.0)).sqrt());
        let rate1 = 2.0 * p / mean;
        let rate2 = 2.0 * (1.0 - p) / mean;
        OpenLoop {
            interarrival: Dist::mixture(vec![
                (p, Dist::exponential(rate1)),
                (1.0 - p, Dist::exponential(rate2)),
            ]),
        }
    }

    /// Seconds until the next arrival.
    pub fn next_gap(&self, rng: &mut Stream) -> f64 {
        self.interarrival.sample(rng)
    }

    /// Mean offered load, requests/second.
    pub fn rate(&self) -> f64 {
        1.0 / self.interarrival.mean()
    }
}

/// Closed-loop load: `clients` concurrent clients, each issuing the next
/// request `think_time` after the previous one completes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClosedLoop {
    /// Concurrent clients.
    pub clients: usize,
    /// Think-time distribution, seconds.
    pub think_time: Dist,
}

impl ClosedLoop {
    /// `clients` clients thinking an exponential `mean_think` seconds.
    pub fn new(clients: usize, mean_think: f64) -> Self {
        assert!(clients >= 1);
        let think_time = if mean_think > 0.0 {
            Dist::exponential_mean(mean_think)
        } else {
            Dist::deterministic(0.0)
        };
        ClosedLoop {
            clients,
            think_time,
        }
    }

    /// Seconds a client waits before re-issuing.
    pub fn next_think(&self, rng: &mut Stream) -> f64 {
        self.think_time.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_rate_matches() {
        let g = OpenLoop::poisson(100.0);
        assert!((g.rate() - 100.0).abs() < 1e-9);
        let mut rng = Stream::from_seed(1);
        let n = 100_000;
        let mean_gap: f64 = (0..n).map(|_| g.next_gap(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean_gap - 0.01).abs() / 0.01 < 0.02, "gap {mean_gap}");
    }

    #[test]
    fn steady_has_zero_variance() {
        let g = OpenLoop::steady(10.0);
        let mut rng = Stream::from_seed(2);
        for _ in 0..100 {
            assert_eq!(g.next_gap(&mut rng), 0.1);
        }
    }

    #[test]
    fn bursty_matches_mean_and_scv() {
        let g = OpenLoop::bursty(50.0, 9.0);
        assert!((g.rate() - 50.0).abs() / 50.0 < 1e-9);
        let mut rng = Stream::from_seed(3);
        let n = 400_000;
        let gaps: Vec<f64> = (0..n).map(|_| g.next_gap(&mut rng)).collect();
        let mean: f64 = gaps.iter().sum::<f64>() / n as f64;
        let var: f64 = gaps.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let scv = var / (mean * mean);
        assert!((mean - 0.02).abs() / 0.02 < 0.02, "mean {mean}");
        assert!((scv - 9.0).abs() < 1.0, "scv {scv}");
    }

    #[test]
    fn closed_loop_zero_think() {
        let c = ClosedLoop::new(8, 0.0);
        let mut rng = Stream::from_seed(4);
        assert_eq!(c.next_think(&mut rng), 0.0);
        assert_eq!(c.clients, 8);
    }

    #[test]
    fn closed_loop_exponential_think() {
        let c = ClosedLoop::new(4, 2.0);
        let mut rng = Stream::from_seed(5);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| c.next_think(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean think {mean}");
    }

    #[test]
    #[should_panic]
    fn zero_rate_rejected() {
        let _ = OpenLoop::poisson(0.0);
    }
}
