//! The request alphabet.

use serde::{Deserialize, Serialize};

/// One storage request issued by a tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// Issuing tenant (index into the scenario's tenant list).
    pub tenant: usize,
    /// Object key (drives placement and popularity).
    pub key: u64,
    /// Payload size in bytes.
    pub bytes: u64,
    /// True for writes (updates hit every replica / the write quorum).
    pub write: bool,
    /// True for sequential access (scans); false for point ops.
    pub sequential: bool,
}

impl Request {
    /// A point read.
    pub fn read(tenant: usize, key: u64, bytes: u64) -> Self {
        Request {
            tenant,
            key,
            bytes,
            write: false,
            sequential: false,
        }
    }

    /// A point write.
    pub fn write(tenant: usize, key: u64, bytes: u64) -> Self {
        Request {
            tenant,
            key,
            bytes,
            write: true,
            sequential: false,
        }
    }

    /// A sequential scan of `bytes` starting at `key`.
    pub fn scan(tenant: usize, key: u64, bytes: u64) -> Self {
        Request {
            tenant,
            key,
            bytes,
            write: false,
            sequential: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_flags() {
        let r = Request::read(0, 7, 4096);
        assert!(!r.write && !r.sequential);
        let w = Request::write(1, 7, 4096);
        assert!(w.write && !w.sequential);
        let s = Request::scan(2, 0, 1 << 20);
        assert!(!s.write && s.sequential);
        assert_eq!(s.bytes, 1 << 20);
    }
}
