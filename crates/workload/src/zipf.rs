//! Zipfian key popularity — the skew that makes multi-tenant interference
//! interesting.
//!
//! Implements the Gray et al. ("Quickly generating billion-record synthetic
//! databases", SIGMOD'94) constant-time Zipf sampler that YCSB popularized,
//! for exponent `theta ∈ [0, 1)`, plus a scrambled variant that decouples
//! popularity rank from key locality.

use serde::{Deserialize, Serialize};
use wt_des::rng::Stream;

/// A Zipf(θ) sampler over `{0, 1, …, n−1}` where rank 0 is the hottest key.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl Zipf {
    /// A sampler over `n` items with skew `theta` (0 = uniform, 0.99 =
    /// YCSB's default heavy skew). Requires `0 ≤ theta < 1`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n >= 1, "need at least one item");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0, 1)");
        let zetan = zeta(n, theta);
        let zeta2 = zeta(2.min(n), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipf {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2,
        }
    }

    /// Number of items.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draws one rank in `[0, n)`; rank 0 is most popular.
    pub fn sample(&self, rng: &mut Stream) -> u64 {
        if self.n == 1 {
            return 0;
        }
        let u = rng.uniform();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    /// Draws a *scrambled* key: popularity still Zipfian but hot keys are
    /// spread over the key space via a Fibonacci hash (so placement does
    /// not correlate with rank).
    pub fn sample_scrambled(&self, rng: &mut Stream) -> u64 {
        let rank = self.sample(rng);
        (rank + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) % self.n
    }

    /// The exact probability of rank `i` under this law (for validation).
    pub fn prob(&self, i: u64) -> f64 {
        assert!(i < self.n);
        1.0 / ((i + 1) as f64).powf(self.theta) / self.zetan
    }

    /// Internal consistency value (exposed for tests).
    #[doc(hidden)]
    pub fn zeta2(&self) -> f64 {
        self.zeta2
    }
}

/// Generalized harmonic number Σ_{i=1..n} i^{−θ}.
fn zeta(n: u64, theta: f64) -> f64 {
    // Exact sum for modest n; Euler–Maclaurin tail for huge n keeps
    // construction O(1e6) at most.
    if n <= 1_000_000 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    } else {
        let head: f64 = (1..=1_000_000u64)
            .map(|i| 1.0 / (i as f64).powf(theta))
            .sum();
        // ∫_{1e6}^{n} x^{-θ} dx + ½(f(1e6)+f(n))
        let a = 1_000_000f64;
        let b = n as f64;
        let integral = (b.powf(1.0 - theta) - a.powf(1.0 - theta)) / (1.0 - theta);
        head + integral + 0.5 * (b.powf(-theta) - a.powf(-theta))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_when_theta_zero() {
        let z = Zipf::new(100, 0.0);
        let mut rng = Stream::from_seed(1);
        let mut counts = vec![0u32; 100];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let min = *counts.iter().min().unwrap();
        let max = *counts.iter().max().unwrap();
        assert!(
            f64::from(max) / f64::from(min) < 1.4,
            "not uniform: {min}..{max}"
        );
    }

    #[test]
    fn skewed_head_dominates() {
        let z = Zipf::new(10_000, 0.99);
        let mut rng = Stream::from_seed(2);
        let n = 200_000;
        let head_hits = (0..n).filter(|_| z.sample(&mut rng) < 10).count();
        let frac = head_hits as f64 / n as f64;
        // Under Zipf(0.99) the top-10 of 10k keys draw a large share.
        let expect: f64 = (0..10).map(|i| z.prob(i)).sum();
        assert!(
            (frac - expect).abs() < 0.02,
            "head share {frac} vs expected {expect}"
        );
        assert!(frac > 0.3, "head should dominate, got {frac}");
    }

    #[test]
    fn empirical_rank_frequencies_match_probabilities() {
        let z = Zipf::new(50, 0.8);
        let mut rng = Stream::from_seed(3);
        let n = 500_000;
        let mut counts = vec![0u64; 50];
        for _ in 0..n {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        for i in [0usize, 1, 5, 20] {
            let emp = counts[i] as f64 / n as f64;
            let want = z.prob(i as u64);
            assert!(
                (emp - want).abs() / want < 0.1,
                "rank {i}: emp {emp} vs want {want}"
            );
        }
    }

    #[test]
    fn probabilities_sum_to_one() {
        let z = Zipf::new(1000, 0.9);
        let total: f64 = (0..1000).map(|i| z.prob(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(7, 0.5);
        let mut rng = Stream::from_seed(4);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 7);
        }
    }

    #[test]
    fn single_item_degenerate() {
        let z = Zipf::new(1, 0.5);
        let mut rng = Stream::from_seed(5);
        assert_eq!(z.sample(&mut rng), 0);
    }

    #[test]
    fn scrambled_preserves_skew_but_moves_hot_key() {
        let z = Zipf::new(10_000, 0.99);
        let mut rng = Stream::from_seed(6);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..100_000 {
            *counts.entry(z.sample_scrambled(&mut rng)).or_insert(0u64) += 1;
        }
        let (&hot, &hits) = counts.iter().max_by_key(|(_, &c)| c).unwrap();
        // The hottest key is no longer 0 but still draws the Zipf head share.
        assert_ne!(hot, 0);
        let frac = hits as f64 / 100_000.0;
        assert!((frac - z.prob(0)).abs() < 0.02);
    }

    #[test]
    fn zeta_tail_approximation_continuous() {
        // The piecewise zeta must not jump at the 1e6 boundary.
        let just_below = zeta(1_000_000, 0.9);
        let just_above = zeta(1_000_001, 0.9);
        assert!(just_above > just_below);
        assert!(just_above - just_below < 1e-4);
    }

    #[test]
    #[should_panic(expected = "theta must be in")]
    fn theta_one_rejected() {
        let _ = Zipf::new(10, 1.0);
    }
}
