//! Request traces: record, persist, characterize, and synthesize.
//!
//! §3's performance-SLA use case starts from *workload characterization* —
//! "identifying and carefully modeling the key characteristics (e.g., CPU,
//! Disk I/O, network, etc.)". This module closes that loop:
//!
//! 1. [`Trace::record`] captures a request stream from a live
//!    [`TenantWorkload`] (or a real system's log, via [`Trace::from_entries`]),
//! 2. [`Trace::characterize`] measures it — rate, mix, size and
//!    interarrival laws (fitted with `wt-dist`), key skew,
//! 3. [`Characterization::to_workload`] synthesizes a new tenant model
//!    whose statistics match, ready to feed back into the simulator.

use crate::generator::OpenLoop;
use crate::mix::Mix;
use crate::request::Request;
use crate::tenant::TenantWorkload;
use serde::{Deserialize, Serialize};
use wt_des::rng::Stream;
use wt_dist::fit::fit_best;
use wt_dist::Dist;

/// One timestamped request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// Seconds since the trace epoch.
    pub at_s: f64,
    /// The request.
    pub request: Request,
}

/// A time-ordered request trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    entries: Vec<TraceEntry>,
}

/// Summary statistics of a trace — the §3 "key characteristics".
#[derive(Debug, Clone)]
pub struct Characterization {
    /// Number of requests.
    pub requests: usize,
    /// Trace duration, seconds.
    pub duration_s: f64,
    /// Mean arrival rate, requests/second.
    pub rate_rps: f64,
    /// Fraction of point reads.
    pub read_fraction: f64,
    /// Fraction of writes.
    pub write_fraction: f64,
    /// Fraction of scans.
    pub scan_fraction: f64,
    /// Mean payload size, bytes.
    pub mean_bytes: f64,
    /// Whether interarrivals are statistically consistent with Poisson
    /// (exponential interarrivals at 1% significance).
    pub poisson_like: bool,
    /// The best-fitting interarrival family name.
    pub interarrival_family: &'static str,
    /// Squared coefficient of variation of the interarrival times
    /// (1 = Poisson; larger = bursty).
    pub interarrival_scv: f64,
    /// Share of requests hitting the hottest 1% of keys (skew measure).
    pub hot_key_share: f64,
}

impl Trace {
    /// Records `duration_s` of a tenant's request stream.
    pub fn record(tenant: &TenantWorkload, duration_s: f64, seed: u64) -> Trace {
        assert!(duration_s > 0.0);
        let mut rng = Stream::from_seed(seed);
        let zipf = tenant.mix.make_zipf();
        let mut entries = Vec::new();
        let mut t = 0.0;
        loop {
            t += tenant.arrivals.next_gap(&mut rng);
            if t >= duration_s {
                break;
            }
            entries.push(TraceEntry {
                at_s: t,
                request: tenant.mix.draw_request(0, &zipf, &mut rng),
            });
        }
        Trace { entries }
    }

    /// Wraps pre-existing entries (e.g. parsed from a production log);
    /// sorts them by time.
    pub fn from_entries(mut entries: Vec<TraceEntry>) -> Trace {
        entries.sort_by(|a, b| a.at_s.partial_cmp(&b.at_s).expect("finite times"));
        Trace { entries }
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the trace holds no requests.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Trace duration (time of last request).
    pub fn duration_s(&self) -> f64 {
        self.entries.last().map(|e| e.at_s).unwrap_or(0.0)
    }

    /// The entries, in time order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Serializes to JSON lines.
    pub fn save_jsonl(&self, path: &std::path::Path) -> std::io::Result<()> {
        use std::io::Write as _;
        let mut f = std::fs::File::create(path)?;
        for e in &self.entries {
            writeln!(
                f,
                "{}",
                serde_json::to_string(e).expect("entries serialize")
            )?;
        }
        Ok(())
    }

    /// Loads from JSON lines, in parallel: a reader thread pulls the file
    /// in ~256 KiB chunks cut at newline boundaries and fans them over a
    /// bounded channel to a pool of parser workers (`WT_WORKERS` when
    /// set, the host's parallelism otherwise — the same knob the farm
    /// honors); chunks are tagged with their file position and the merge
    /// restores file order, so the result is exactly what
    /// [`load_jsonl_sync`](Self::load_jsonl_sync) produces, which the
    /// round-trip test asserts. JSON decoding dominates the wall time on
    /// big traces (see the EXPERIMENTS.md trace-ingestion note), so the
    /// fan-out scales with cores where the old single-parser overlap
    /// capped at 2×.
    pub fn load_jsonl(path: &std::path::Path) -> std::io::Result<Trace> {
        use std::io::Read as _;
        const CHUNK: usize = 256 * 1024;
        // Open here so a missing file fails before any thread is spawned.
        let mut f = std::fs::File::open(path)?;
        let workers = std::env::var("WT_WORKERS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
            .min(8);

        // Chunks travel as (index, text); the index is the merge key and
        // the error-priority key. Bounded: if parsing falls behind, the
        // reader blocks instead of buffering the whole file in memory.
        type Tagged = (usize, std::io::Result<String>);
        let (chunk_tx, chunk_rx) = std::sync::mpsc::sync_channel::<Tagged>(workers * 2);
        let chunk_rx = std::sync::Mutex::new(chunk_rx);
        let (out_tx, out_rx) =
            std::sync::mpsc::channel::<(usize, std::io::Result<Vec<TraceEntry>>)>();

        std::thread::scope(|scope| {
            scope.spawn(move || {
                let invalid = |e: std::string::FromUtf8Error| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, e)
                };
                let mut idx = 0usize;
                let mut carry: Vec<u8> = Vec::new();
                let mut buf = vec![0u8; CHUNK];
                loop {
                    match f.read(&mut buf) {
                        Ok(0) => break,
                        Ok(n) => {
                            carry.extend_from_slice(&buf[..n]);
                            // Ship everything up to the last complete line;
                            // the tail carries into the next chunk.
                            if let Some(pos) = carry.iter().rposition(|&b| b == b'\n') {
                                let rest = carry.split_off(pos + 1);
                                let whole = std::mem::replace(&mut carry, rest);
                                let msg = String::from_utf8(whole).map_err(invalid);
                                let fatal = msg.is_err();
                                if chunk_tx.send((idx, msg)).is_err() || fatal {
                                    return;
                                }
                                idx += 1;
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                        Err(e) => {
                            let _ = chunk_tx.send((idx, Err(e)));
                            return;
                        }
                    }
                }
                // Final line without a trailing newline.
                if !carry.is_empty() {
                    let _ = chunk_tx.send((idx, String::from_utf8(carry).map_err(invalid)));
                }
            });

            for _ in 0..workers {
                let out_tx = out_tx.clone();
                let chunk_rx = &chunk_rx;
                scope.spawn(move || loop {
                    // Lock only to receive; parsing runs unlocked so the
                    // pool actually fans out.
                    let msg = chunk_rx.lock().expect("receiver lock").recv();
                    let Ok((idx, chunk)) = msg else { break };
                    let parsed = chunk.and_then(|text| {
                        let mut out = Vec::new();
                        for line in text.lines() {
                            if line.trim().is_empty() {
                                continue;
                            }
                            out.push(serde_json::from_str(line).map_err(|e| {
                                std::io::Error::new(std::io::ErrorKind::InvalidData, e)
                            })?);
                        }
                        Ok(out)
                    });
                    if out_tx.send((idx, parsed)).is_err() {
                        break;
                    }
                });
            }
            drop(out_tx);
        });

        // All threads have exited; merge in chunk order. On failure,
        // report the error of the earliest chunk — each chunk parses
        // sequentially and stops at its first bad line, so this is the
        // same error the sync loader would have hit first.
        let mut parts: Vec<(usize, Vec<TraceEntry>)> = Vec::new();
        let mut failure: Option<(usize, std::io::Error)> = None;
        for (idx, res) in out_rx {
            match res {
                Ok(v) => parts.push((idx, v)),
                Err(e) => {
                    if failure.as_ref().is_none_or(|(i, _)| idx < *i) {
                        failure = Some((idx, e));
                    }
                }
            }
        }
        if let Some((_, e)) = failure {
            return Err(e);
        }
        parts.sort_unstable_by_key(|&(idx, _)| idx);
        let mut entries = Vec::with_capacity(parts.iter().map(|(_, v)| v.len()).sum());
        for (_, v) in parts {
            entries.extend(v);
        }
        Ok(Trace::from_entries(entries))
    }

    /// Loads from JSON lines on the calling thread — the simple
    /// line-at-a-time path [`load_jsonl`](Self::load_jsonl) overlaps.
    /// Kept as the behavioral reference (tests assert both paths agree)
    /// and for callers that must not spawn.
    pub fn load_jsonl_sync(path: &std::path::Path) -> std::io::Result<Trace> {
        use std::io::BufRead as _;
        let f = std::fs::File::open(path)?;
        let mut entries = Vec::new();
        for line in std::io::BufReader::new(f).lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            entries.push(
                serde_json::from_str(&line)
                    .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?,
            );
        }
        Ok(Trace::from_entries(entries))
    }

    /// Measures the trace.
    pub fn characterize(&self) -> Characterization {
        assert!(self.entries.len() >= 10, "trace too short to characterize");
        let n = self.entries.len();
        let duration = self.duration_s();
        let reads = self
            .entries
            .iter()
            .filter(|e| !e.request.write && !e.request.sequential)
            .count();
        let writes = self.entries.iter().filter(|e| e.request.write).count();
        let scans = self
            .entries
            .iter()
            .filter(|e| e.request.sequential && !e.request.write)
            .count();
        let mean_bytes = self
            .entries
            .iter()
            .map(|e| e.request.bytes as f64)
            .sum::<f64>()
            / n as f64;

        // Interarrival law.
        let gaps: Vec<f64> = self
            .entries
            .windows(2)
            .map(|w| (w[1].at_s - w[0].at_s).max(1e-9))
            .collect();
        let fits = fit_best(&gaps);
        let exp_fit = fits
            .iter()
            .find(|f| f.family == "exponential")
            .expect("exponential always fitted");
        let poisson_like = exp_fit.ks.accepts(0.01);
        let gap_mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let gap_var = gaps
            .iter()
            .map(|g| (g - gap_mean) * (g - gap_mean))
            .sum::<f64>()
            / gaps.len() as f64;
        let interarrival_scv = gap_var / (gap_mean * gap_mean);

        // Key skew: share of the hottest 1% of distinct keys.
        let mut counts: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for e in &self.entries {
            *counts.entry(e.request.key).or_insert(0) += 1;
        }
        let mut freqs: Vec<u64> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let top = (freqs.len().div_ceil(100)).max(1);
        let hot: u64 = freqs.iter().take(top).sum();
        let hot_key_share = hot as f64 / n as f64;

        Characterization {
            requests: n,
            duration_s: duration,
            rate_rps: n as f64 / duration,
            read_fraction: reads as f64 / n as f64,
            write_fraction: writes as f64 / n as f64,
            scan_fraction: scans as f64 / n as f64,
            mean_bytes,
            poisson_like,
            interarrival_family: fits[0].family,
            interarrival_scv,
            hot_key_share,
        }
    }
}

impl Characterization {
    /// Synthesizes a tenant whose statistics match the characterization —
    /// the trace → model → simulator loop. Key skew is mapped back to a
    /// Zipf exponent by matching the hot-1% share coarsely.
    pub fn to_workload(&self, name: &str, keys: u64, value_bytes: u64) -> TenantWorkload {
        // Coarse skew inversion: hot-1% share of ~1% → uniform; >30% → 0.99.
        let key_skew = if self.hot_key_share > 0.3 {
            0.99
        } else if self.hot_key_share > 0.1 {
            0.8
        } else if self.hot_key_share > 0.03 {
            0.5
        } else {
            0.0
        };
        // Preserve burstiness: a bursty source synthesized as Poisson
        // would understate every queueing tail downstream.
        let arrivals = if self.interarrival_scv > 1.5 {
            OpenLoop::bursty(self.rate_rps, self.interarrival_scv)
        } else {
            OpenLoop::poisson(self.rate_rps)
        };
        TenantWorkload {
            name: name.into(),
            mix: Mix {
                read_weight: self.read_fraction,
                write_weight: self.write_fraction,
                scan_weight: self.scan_fraction,
                value_size: Dist::deterministic(value_bytes as f64),
                scan_size: Dist::deterministic(self.mean_bytes.max(1.0)),
                keys,
                key_skew,
            },
            arrivals,
            object_bytes: 1 << 20,
            dataset_bytes: keys * value_bytes,
            latency_sla: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorded_trace_matches_source_statistics() {
        let tenant = TenantWorkload::oltp("shop", 200.0, 10_000);
        let trace = Trace::record(&tenant, 120.0, 1);
        assert!(trace.len() > 20_000, "len {}", trace.len());
        let c = trace.characterize();
        assert!((c.rate_rps - 200.0).abs() < 10.0, "rate {}", c.rate_rps);
        // YCSB-B: 5% writes.
        assert!(
            (c.write_fraction - 0.05).abs() < 0.01,
            "{}",
            c.write_fraction
        );
        assert_eq!(c.scan_fraction, 0.0);
        assert!(c.poisson_like, "oltp arrivals are Poisson");
        assert!(
            (c.interarrival_scv - 1.0).abs() < 0.1,
            "scv {}",
            c.interarrival_scv
        );
        // Zipf 0.99 over 10k keys: hot 1% draws a large share.
        assert!(c.hot_key_share > 0.3, "hot share {}", c.hot_key_share);
    }

    #[test]
    fn bursty_trace_detected_as_non_poisson() {
        let mut tenant = TenantWorkload::oltp("bursty", 200.0, 1_000);
        tenant.arrivals = OpenLoop::bursty(200.0, 16.0);
        let trace = Trace::record(&tenant, 120.0, 2);
        let c = trace.characterize();
        assert!(!c.poisson_like, "SCV-16 arrivals must reject exponential");
        assert!(c.interarrival_scv > 8.0, "scv {}", c.interarrival_scv);
        // Synthesis preserves the burstiness.
        let synth = c.to_workload("b", 1_000, 1024);
        let re = Trace::record(&synth, 120.0, 99).characterize();
        assert!(
            re.interarrival_scv > 8.0,
            "resynthesized scv {}",
            re.interarrival_scv
        );
    }

    #[test]
    fn uniform_keys_have_no_hot_share() {
        let mut tenant = TenantWorkload::oltp("flat", 100.0, 10_000);
        tenant.mix.key_skew = 0.0;
        let trace = Trace::record(&tenant, 120.0, 3);
        let c = trace.characterize();
        assert!(c.hot_key_share < 0.05, "hot share {}", c.hot_key_share);
    }

    #[test]
    fn jsonl_roundtrip() {
        let tenant = TenantWorkload::oltp("shop", 50.0, 100);
        let trace = Trace::record(&tenant, 10.0, 4);
        let dir = std::env::temp_dir().join("wt-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        trace.save_jsonl(&path).unwrap();
        let back = Trace::load_jsonl(&path).unwrap();
        assert_eq!(back, trace);
        std::fs::remove_file(&path).ok();
    }

    /// A file bigger than one 256 KiB reader chunk, so the streaming path
    /// exercises chunk splitting and tail carry; the streaming and sync
    /// loaders must agree entry for entry.
    #[test]
    fn jsonl_streaming_matches_sync_across_chunks() {
        let tenant = TenantWorkload::oltp("bulk", 400.0, 5_000);
        let trace = Trace::record(&tenant, 60.0, 9);
        let dir = std::env::temp_dir().join("wt-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace-bulk.jsonl");
        trace.save_jsonl(&path).unwrap();
        assert!(
            std::fs::metadata(&path).unwrap().len() > 512 * 1024,
            "trace file must span multiple reader chunks"
        );
        let streamed = Trace::load_jsonl(&path).unwrap();
        let synced = Trace::load_jsonl_sync(&path).unwrap();
        assert_eq!(streamed, synced);
        assert_eq!(streamed, trace);
        std::fs::remove_file(&path).ok();
    }

    /// No trailing newline and interior blank lines: the reader's final
    /// carry flush and the blank-line skip both still apply.
    #[test]
    fn jsonl_streaming_handles_ragged_files() {
        let tenant = TenantWorkload::oltp("ragged", 50.0, 100);
        let trace = Trace::record(&tenant, 5.0, 11);
        let dir = std::env::temp_dir().join("wt-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace-ragged.jsonl");
        trace.save_jsonl(&path).unwrap();
        let mut text = std::fs::read_to_string(&path).unwrap();
        // Blank line in the middle, strip the final newline.
        if let Some(mid) = text[..text.len() / 2].rfind('\n') {
            text.insert(mid + 1, '\n');
        }
        while text.ends_with('\n') {
            text.pop();
        }
        std::fs::write(&path, &text).unwrap();
        let streamed = Trace::load_jsonl(&path).unwrap();
        assert_eq!(streamed, trace);
        std::fs::remove_file(&path).ok();
    }

    /// Not a correctness test — prints streaming vs sync ingest
    /// throughput (the EXPERIMENTS.md trace-ingestion numbers). Run with
    /// `cargo test --release -p wt-workload jsonl_throughput -- --ignored --nocapture`.
    #[test]
    #[ignore]
    fn jsonl_throughput() {
        let tenant = TenantWorkload::oltp("big", 2_000.0, 50_000);
        let trace = Trace::record(&tenant, 300.0, 13);
        let dir = std::env::temp_dir().join("wt-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace-throughput.jsonl");
        trace.save_jsonl(&path).unwrap();
        let bytes = std::fs::metadata(&path).unwrap().len() as f64;
        let time = |f: &dyn Fn() -> Trace| {
            let mut best = f64::INFINITY;
            for _ in 0..5 {
                let t0 = std::time::Instant::now();
                let loaded = f();
                best = best.min(t0.elapsed().as_secs_f64());
                assert_eq!(loaded.len(), trace.len());
            }
            best
        };
        let sync_s = time(&|| Trace::load_jsonl_sync(&path).unwrap());
        let stream_s = time(&|| Trace::load_jsonl(&path).unwrap());
        println!(
            "trace ingest: {} entries, {:.1} MiB; sync {:.1} MiB/s, streaming {:.1} MiB/s ({:.2}x)",
            trace.len(),
            bytes / (1024.0 * 1024.0),
            bytes / (1024.0 * 1024.0) / sync_s,
            bytes / (1024.0 * 1024.0) / stream_s,
            sync_s / stream_s
        );
        std::fs::remove_file(&path).ok();
    }

    /// A malformed line in a *late* chunk of a multi-chunk file: the
    /// earlier chunks parse fine on other workers, but the failure still
    /// surfaces (and the loader returns an error, not a truncated trace).
    #[test]
    fn jsonl_parallel_surfaces_late_chunk_errors() {
        let tenant = TenantWorkload::oltp("late-err", 400.0, 5_000);
        let trace = Trace::record(&tenant, 60.0, 21);
        let dir = std::env::temp_dir().join("wt-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace-late-err.jsonl");
        trace.save_jsonl(&path).unwrap();
        assert!(
            std::fs::metadata(&path).unwrap().len() > 512 * 1024,
            "file must span multiple parser chunks"
        );
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        writeln!(f, "{{\"not\": \"a trace entry\"}}").unwrap();
        drop(f);
        let err = Trace::load_jsonl(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert_eq!(
            Trace::load_jsonl_sync(&path).unwrap_err().kind(),
            std::io::ErrorKind::InvalidData,
            "oracle agrees the file is bad"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn jsonl_streaming_surfaces_parse_errors() {
        let dir = std::env::temp_dir().join("wt-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace-bad.jsonl");
        std::fs::write(&path, "{\"not\": \"a trace entry\"\n").unwrap();
        let err = Trace::load_jsonl(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn synthesized_workload_matches_characterization() {
        let tenant = TenantWorkload::oltp("shop", 150.0, 10_000);
        let trace = Trace::record(&tenant, 60.0, 5);
        let c = trace.characterize();
        let synth = c.to_workload("shop-synth", 10_000, 1024);
        assert!((synth.arrivals.rate() - c.rate_rps).abs() < 1e-9);
        assert!((synth.mix.write_fraction() - c.write_fraction).abs() < 0.02);
        // Skew recovered as heavy.
        assert!(synth.mix.key_skew > 0.9, "skew {}", synth.mix.key_skew);
        // And the re-recorded trace matches the original's rate.
        let trace2 = Trace::record(&synth, 60.0, 6);
        let c2 = trace2.characterize();
        assert!((c2.rate_rps - c.rate_rps).abs() / c.rate_rps < 0.1);
        assert!(c2.hot_key_share > 0.3);
    }

    #[test]
    fn from_entries_sorts() {
        let e = |t: f64| TraceEntry {
            at_s: t,
            request: Request::read(0, 1, 10),
        };
        let tr = Trace::from_entries(vec![e(3.0), e(1.0), e(2.0)]);
        let times: Vec<f64> = tr.entries().iter().map(|x| x.at_s).collect();
        assert_eq!(times, vec![1.0, 2.0, 3.0]);
        assert_eq!(tr.duration_s(), 3.0);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn tiny_trace_rejected() {
        let tr = Trace::from_entries(vec![TraceEntry {
            at_s: 1.0,
            request: Request::read(0, 1, 10),
        }]);
        let _ = tr.characterize();
    }
}
