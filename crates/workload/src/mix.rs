//! Operation mixes: what fraction of requests read, write or scan, and how
//! big they are.

use crate::request::Request;
use crate::zipf::Zipf;
use serde::{Deserialize, Serialize};
use wt_des::rng::Stream;
use wt_dist::Dist;

/// Kinds of operations a mix can emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Point read.
    Read,
    /// Point write.
    Write,
    /// Sequential scan.
    Scan,
}

/// An operation mix over a keyspace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mix {
    /// Relative weight of point reads.
    pub read_weight: f64,
    /// Relative weight of point writes.
    pub write_weight: f64,
    /// Relative weight of scans.
    pub scan_weight: f64,
    /// Point operation payload size distribution, bytes.
    pub value_size: Dist,
    /// Scan length distribution, bytes.
    pub scan_size: Dist,
    /// Number of keys in the tenant's dataset.
    pub keys: u64,
    /// Zipf skew over keys (0 = uniform).
    pub key_skew: f64,
}

impl Mix {
    /// YCSB workload A: 50% reads, 50% writes, 1 KB values, Zipf 0.99.
    pub fn ycsb_a(keys: u64) -> Self {
        Mix {
            read_weight: 0.5,
            write_weight: 0.5,
            scan_weight: 0.0,
            value_size: Dist::deterministic(1024.0),
            scan_size: Dist::deterministic(1024.0),
            keys,
            key_skew: 0.99,
        }
    }

    /// YCSB workload B: 95% reads, 5% writes.
    pub fn ycsb_b(keys: u64) -> Self {
        Mix {
            write_weight: 0.05,
            read_weight: 0.95,
            ..Self::ycsb_a(keys)
        }
    }

    /// YCSB workload C: read-only.
    pub fn ycsb_c(keys: u64) -> Self {
        Mix {
            read_weight: 1.0,
            write_weight: 0.0,
            ..Self::ycsb_a(keys)
        }
    }

    /// An analytics-style scan-heavy mix: 10% point reads, 90% large scans.
    pub fn scan_heavy(keys: u64) -> Self {
        Mix {
            read_weight: 0.1,
            write_weight: 0.0,
            scan_weight: 0.9,
            value_size: Dist::deterministic(1024.0),
            scan_size: Dist::lognormal_mean_cv(64.0 * 1024.0 * 1024.0, 1.0),
            keys,
            key_skew: 0.0,
        }
    }

    /// Draws the next operation kind.
    pub fn draw_kind(&self, rng: &mut Stream) -> OpKind {
        let total = self.read_weight + self.write_weight + self.scan_weight;
        assert!(total > 0.0, "mix has no positive weights");
        let u = rng.uniform() * total;
        if u < self.read_weight {
            OpKind::Read
        } else if u < self.read_weight + self.write_weight {
            OpKind::Write
        } else {
            OpKind::Scan
        }
    }

    /// Generates one complete request for `tenant` using a prepared Zipf
    /// sampler (build it once with [`Mix::make_zipf`]).
    pub fn draw_request(&self, tenant: usize, zipf: &Zipf, rng: &mut Stream) -> Request {
        let key = zipf.sample_scrambled(rng);
        match self.draw_kind(rng) {
            OpKind::Read => Request::read(tenant, key, self.value_size.sample(rng) as u64),
            OpKind::Write => Request::write(tenant, key, self.value_size.sample(rng) as u64),
            OpKind::Scan => Request::scan(tenant, key, self.scan_size.sample(rng) as u64),
        }
    }

    /// The Zipf sampler matching this mix's keyspace.
    pub fn make_zipf(&self) -> Zipf {
        Zipf::new(self.keys, self.key_skew)
    }

    /// Fraction of operations that write.
    pub fn write_fraction(&self) -> f64 {
        self.write_weight / (self.read_weight + self.write_weight + self.scan_weight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ycsb_presets() {
        assert_eq!(Mix::ycsb_a(100).write_fraction(), 0.5);
        assert!((Mix::ycsb_b(100).write_fraction() - 0.05).abs() < 1e-12);
        assert_eq!(Mix::ycsb_c(100).write_fraction(), 0.0);
    }

    #[test]
    fn draw_kind_respects_weights() {
        let mix = Mix::ycsb_b(1000);
        let mut rng = Stream::from_seed(1);
        let n = 100_000;
        let writes = (0..n)
            .filter(|_| mix.draw_kind(&mut rng) == OpKind::Write)
            .count();
        let frac = writes as f64 / n as f64;
        assert!((frac - 0.05).abs() < 0.005, "write frac {frac}");
    }

    #[test]
    fn read_only_never_writes() {
        let mix = Mix::ycsb_c(1000);
        let mut rng = Stream::from_seed(2);
        let zipf = mix.make_zipf();
        for _ in 0..1000 {
            let r = mix.draw_request(0, &zipf, &mut rng);
            assert!(!r.write);
            assert!(r.key < 1000);
            assert_eq!(r.bytes, 1024);
        }
    }

    #[test]
    fn scan_heavy_emits_large_scans() {
        let mix = Mix::scan_heavy(100);
        let mut rng = Stream::from_seed(3);
        let zipf = mix.make_zipf();
        let reqs: Vec<Request> = (0..1000)
            .map(|_| mix.draw_request(1, &zipf, &mut rng))
            .collect();
        let scans = reqs.iter().filter(|r| r.sequential).count();
        assert!((850..950).contains(&scans), "scan count {scans}");
        let avg_scan: f64 = reqs
            .iter()
            .filter(|r| r.sequential)
            .map(|r| r.bytes as f64)
            .sum::<f64>()
            / scans as f64;
        assert!(avg_scan > 10.0 * 1024.0 * 1024.0, "avg scan {avg_scan}");
    }

    #[test]
    fn tenant_id_propagates() {
        let mix = Mix::ycsb_a(10);
        let zipf = mix.make_zipf();
        let mut rng = Stream::from_seed(4);
        assert_eq!(mix.draw_request(7, &zipf, &mut rng).tenant, 7);
    }
}
