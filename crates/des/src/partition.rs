//! Conservative partitioned (parallel) discrete-event execution.
//!
//! One simulation run split across `P` partitions, each with its own
//! [`PendingEvents`] queue, RNG substream and model shard, synchronized
//! with the classic conservative-window algorithm: every round, all
//! partitions agree on the global minimum pending timestamp `T`, execute
//! every local event with `time < T + lookahead`, then exchange
//! cross-partition messages at a barrier. The [`Lookahead`] contract —
//! every cross-partition send is delayed by at least the lookahead —
//! guarantees a message produced inside a window arrives at or after the
//! window's end, so no partition can receive an event in its past.
//!
//! # Determinism
//!
//! The executor is deterministic along two independent axes:
//!
//! * **Thread count.** The window sequence is derived from a global
//!   reduction (min over partitions), each partition executes its window
//!   alone, and deliveries are sorted canonically before insertion — so
//!   `run_until` (the single-threaded oracle) and `run_until_threaded(n)`
//!   produce bitwise-identical state, event counts and telemetry for any
//!   `n`. This is pinned by tests here and by
//!   `tests/partitioned_equivalence.rs` at the cluster level.
//! * **Partition count** (a *model* property the executor enables). If a
//!   model keys all state and randomness to shards that never migrate
//!   (e.g. racks), routes *all* cross-shard interaction through
//!   [`PartCtx::send`] (even when both shards share a partition), and
//!   tags each message with its sender shard, then the executed event
//!   sequence restricted to any one shard is independent of how shards
//!   are grouped into partitions. Deliveries are stable-sorted by
//!   `(time, tag)`; ties within one `(time, tag)` pair can only come from
//!   one shard and stay in that shard's send order.
//!
//! The window advance is `min-timestamp + lookahead` (a bounded-lag /
//! YAWNS-style synchronous protocol) rather than fixed-width stepping, so
//! idle stretches are skipped in one round and the round count is bounded
//! by the executed event count, not `horizon / lookahead`.

use crate::engine::StopReason;
use crate::pending::PendingEvents;
use crate::rng::RngFactory;
use crate::time::{SimDuration, SimTime};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};
use wt_obs::Probe;

/// The conservative synchronization bound: a lower bound on the delay of
/// every cross-partition interaction, in simulated time. Larger lookahead
/// means wider windows and fewer barriers; correctness only needs the
/// bound to hold, which [`PartCtx::send`] asserts per message.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Lookahead(SimDuration);

impl Lookahead {
    /// A lookahead of `d`, which must be positive: with zero lookahead no
    /// window can safely execute any event and conservative parallel
    /// execution degenerates.
    pub fn new(d: SimDuration) -> Self {
        assert!(
            d > SimDuration::ZERO,
            "lookahead must be positive, got {:?}",
            d
        );
        Lookahead(d)
    }

    /// A lookahead of `secs` seconds.
    pub fn from_secs(secs: f64) -> Self {
        Lookahead::new(SimDuration::from_secs(secs))
    }

    /// The bound as a duration.
    pub fn window(self) -> SimDuration {
        self.0
    }
}

/// A cross-partition message in flight: deliver `ev` to the destination
/// partition's queue at `time`. `tag` is the sender's shard identity and
/// the canonical tie-breaker for simultaneous deliveries — models must
/// ensure a tag is only ever used by one partition (shards do not
/// migrate), which makes delivery order independent of both thread and
/// partition count.
#[derive(Debug, Clone)]
struct Mail<E> {
    time: SimTime,
    tag: u64,
    ev: E,
}

/// The model of one partition: like [`crate::Model`], but handlers get a
/// [`PartCtx`] that can send timestamped events to other partitions in
/// addition to local scheduling.
pub trait PartitionModel: Send {
    /// The event alphabet (shared by all partitions of a run).
    type Event: Send;

    /// Handles one event at `ctx.now()`.
    fn handle(&mut self, ev: Self::Event, ctx: &mut PartCtx<'_, Self::Event>);

    /// Telemetry label for an event (see [`crate::Model::label`]).
    fn label(_ev: &Self::Event) -> &'static str {
        "event"
    }
}

/// Scheduling context handed to [`PartitionModel::handle`].
pub struct PartCtx<'a, E> {
    now: SimTime,
    part: usize,
    parts: usize,
    lookahead: SimDuration,
    queue: &'a mut dyn PendingEvents<E>,
    outbox: &'a mut Vec<(usize, Mail<E>)>,
    rng: &'a mut RngFactory,
    stop: &'a mut bool,
    marks: &'a mut Vec<&'static str>,
    values: &'a mut Vec<(&'static str, f64)>,
    touches: &'a mut Vec<(&'static str, u64)>,
}

impl<E> PartCtx<'_, E> {
    /// Current simulated time (the executing event's timestamp).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This partition's index.
    pub fn part(&self) -> usize {
        self.part
    }

    /// Number of partitions in the run.
    pub fn parts(&self) -> usize {
        self.parts
    }

    /// The run's lookahead bound.
    pub fn lookahead(&self) -> SimDuration {
        self.lookahead
    }

    /// This partition's RNG factory — a content-derived substream of the
    /// run seed (`subfactory("partition", index)`), so partition draws
    /// are independent of scheduling.
    pub fn rng(&mut self) -> &mut RngFactory {
        self.rng
    }

    /// Schedules a local event `delay` from now (same partition).
    pub fn schedule_in(&mut self, delay: SimDuration, ev: E) {
        self.queue.push(self.now + delay, ev);
    }

    /// Schedules a local event at absolute time `at` (same partition).
    pub fn schedule_at(&mut self, at: SimTime, ev: E) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.queue.push(at, ev);
    }

    /// Sends `ev` to partition `to`, arriving `delay` from now. `delay`
    /// must honor the lookahead contract (`delay >= lookahead`); `tag`
    /// identifies the sending shard and orders simultaneous deliveries
    /// (see `Mail`). Self-sends are allowed — a shard-decomposed model
    /// routes *all* cross-shard traffic here so grouping shards into
    /// fewer partitions cannot change delivery semantics.
    pub fn send(&mut self, to: usize, delay: SimDuration, tag: u64, ev: E) {
        assert!(
            delay >= self.lookahead,
            "cross-partition send delay {:?} violates lookahead {:?}",
            delay,
            self.lookahead
        );
        assert!(to < self.parts, "send to partition {to} of {}", self.parts);
        self.outbox.push((
            to,
            Mail {
                time: self.now + delay,
                tag,
                ev,
            },
        ));
    }

    /// Requests a stop at the end of the current window (the partitioned
    /// analogue of `Ctx::stop`; window granularity keeps it deterministic
    /// across thread counts).
    pub fn stop(&mut self) {
        *self.stop = true;
    }

    /// Pending events in *this partition's* queue. Beware: partition-
    /// local by construction, so models aiming for partition-count
    /// invariance must not let behavior depend on it.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Emits a custom counter mark to the run's probe (no-op unprobed).
    pub fn mark(&mut self, label: &'static str) {
        self.marks.push(label);
    }

    /// Emits a scalar observation to the run's probe (no-op unprobed).
    pub fn observe(&mut self, label: &'static str, value: f64) {
        self.values.push((label, value));
    }

    /// Emits a distinct-key touch to the run's probe (no-op unprobed).
    pub fn touch(&mut self, label: &'static str, key: u64) {
        self.touches.push((label, key));
    }
}

/// One partition's execution state.
struct Cell<M: PartitionModel, Q> {
    model: M,
    queue: Q,
    rng: RngFactory,
    outbox: Vec<(usize, Mail<M::Event>)>,
    executed: u64,
    last_time: SimTime,
    stop: bool,
    marks: Vec<&'static str>,
    values: Vec<(&'static str, f64)>,
    touches: Vec<(&'static str, u64)>,
}

impl<M: PartitionModel, Q: PendingEvents<M::Event>> Cell<M, Q> {
    /// Executes every local event with `time < w_end && time <= horizon`,
    /// feeding `probe`. Cross-partition sends accumulate in the outbox.
    fn execute_window<P: Probe>(
        &mut self,
        part: usize,
        parts: usize,
        lookahead: SimDuration,
        w_end: SimTime,
        horizon: SimTime,
        mut probe: Option<&mut P>,
    ) {
        while let Some(t) = self.queue.peek_time() {
            if t >= w_end || t > horizon {
                break;
            }
            let (t, ev) = self.queue.pop().expect("peeked event present");
            let label = M::label(&ev);
            let mut ctx = PartCtx {
                now: t,
                part,
                parts,
                lookahead,
                queue: &mut self.queue,
                outbox: &mut self.outbox,
                rng: &mut self.rng,
                stop: &mut self.stop,
                marks: &mut self.marks,
                values: &mut self.values,
                touches: &mut self.touches,
            };
            self.model.handle(ev, &mut ctx);
            self.executed += 1;
            self.last_time = t;
            if let Some(p) = probe.as_deref_mut() {
                for mark in self.marks.drain(..) {
                    p.on_mark(mark);
                }
                for (label, value) in self.values.drain(..) {
                    p.on_value(label, value);
                }
                for (label, key) in self.touches.drain(..) {
                    p.on_distinct(label, key);
                }
                p.on_event(label, t.as_secs(), self.queue.len());
            } else {
                self.marks.clear();
                self.values.clear();
                self.touches.clear();
            }
            if self.stop {
                break;
            }
        }
    }

    /// Sorts staged deliveries canonically and inserts them: stable by
    /// `(time, tag)`, so ties across shards order by tag and ties within
    /// a shard keep the shard's send order.
    fn deliver(&mut self, mut inbox: Vec<Mail<M::Event>>, w_end: SimTime) {
        if inbox.is_empty() {
            return;
        }
        inbox.sort_by(|a, b| {
            (a.time, a.tag)
                .partial_cmp(&(b.time, b.tag))
                .expect("finite")
        });
        for m in inbox {
            debug_assert!(
                m.time >= w_end,
                "lookahead violated: delivery at {:?} inside window ending {:?}",
                m.time,
                w_end
            );
            self.queue.push(m.time, m.ev);
        }
    }
}

/// No-op probe for the unprobed paths.
#[derive(Clone, Copy)]
struct NoProbe;
impl Probe for NoProbe {
    fn on_event(&mut self, _label: &'static str, _now_s: f64, _queue_depth: usize) {}
}

/// A partitioned simulation run: `P` models, `P` queues, one lookahead.
///
/// `run_until` executes all partitions on the calling thread — the
/// bitwise-determinism oracle — while `run_until_threaded` fans the
/// partitions across worker threads with barrier synchronization; both
/// produce identical results (see module docs).
pub struct PartitionedSimulation<M: PartitionModel, Q: PendingEvents<M::Event>> {
    cells: Vec<Cell<M, Q>>,
    lookahead: SimDuration,
    now: SimTime,
}

impl<M, Q> PartitionedSimulation<M, Q>
where
    M: PartitionModel,
    Q: PendingEvents<M::Event> + Default + Send,
{
    /// A partitioned simulation over `models` (one per partition), seeded
    /// from `seed`: partition `i`'s [`RngFactory`] is
    /// `RngFactory::new(seed).subfactory("partition", i)` — the same
    /// content-hash substream derivation sweep seeds use.
    pub fn new(models: Vec<M>, seed: u64, lookahead: Lookahead) -> Self {
        assert!(!models.is_empty(), "need at least one partition");
        let root = RngFactory::new(seed);
        let cells = models
            .into_iter()
            .enumerate()
            .map(|(i, model)| Cell {
                model,
                queue: Q::default(),
                rng: root.subfactory("partition", i as u64),
                outbox: Vec::new(),
                executed: 0,
                last_time: SimTime::ZERO,
                stop: false,
                marks: Vec::new(),
                values: Vec::new(),
                touches: Vec::new(),
            })
            .collect();
        PartitionedSimulation {
            cells,
            lookahead: lookahead.window(),
            now: SimTime::ZERO,
        }
    }

    /// Number of partitions.
    pub fn parts(&self) -> usize {
        self.cells.len()
    }

    /// The committed global clock (after a run: the horizon, or the last
    /// executed event's time when the queues drained first).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events executed across all partitions.
    pub fn events_executed(&self) -> u64 {
        self.cells.iter().map(|c| c.executed).sum()
    }

    /// Events executed per partition, in partition order.
    pub fn part_events(&self) -> Vec<u64> {
        self.cells.iter().map(|c| c.executed).collect()
    }

    /// Partition `i`'s model.
    pub fn model(&self, i: usize) -> &M {
        &self.cells[i].model
    }

    /// Partition `i`'s model, mutably (setup only).
    pub fn model_mut(&mut self, i: usize) -> &mut M {
        &mut self.cells[i].model
    }

    /// Iterates the partition models in partition order (result folds).
    pub fn models(&self) -> impl Iterator<Item = &M> {
        self.cells.iter().map(|c| &c.model)
    }

    /// Schedules an event into partition `part` at absolute time `at`
    /// (setup seeding; mirrors `Simulation::schedule_at`).
    pub fn schedule_at(&mut self, part: usize, at: SimTime, ev: M::Event) {
        self.cells[part].queue.push(at, ev);
    }

    /// Pre-sizes partition `part`'s queue.
    pub fn reserve_events(&mut self, part: usize, n: usize) {
        self.cells[part].queue.reserve(n);
    }

    /// Runs every partition on the calling thread until `horizon` — the
    /// serial oracle all parallel schedules must match bitwise.
    pub fn run_until(&mut self, horizon: SimTime) -> StopReason {
        self.run_serial::<NoProbe>(horizon, None)
    }

    /// [`Self::run_until`] across `threads` worker threads. Bitwise
    /// identical to the serial oracle for any thread count.
    pub fn run_until_threaded(&mut self, horizon: SimTime, threads: usize) -> StopReason {
        if threads <= 1 || self.cells.len() <= 1 {
            return self.run_until(horizon);
        }
        self.run_threaded::<NoProbe>(horizon, threads, None)
    }

    /// Probed run: `probes[i]` observes partition `i`'s event stream
    /// (marks, values, touches included). With `threads <= 1` this is the
    /// serial oracle; otherwise partitions fan out across threads. The
    /// per-partition probe assignment is identical either way, so
    /// telemetry distilled from the probes is too.
    pub fn run_until_probed<P: Probe + Send>(
        &mut self,
        horizon: SimTime,
        threads: usize,
        probes: &mut [P],
    ) -> StopReason {
        assert_eq!(
            probes.len(),
            self.cells.len(),
            "one probe per partition required"
        );
        if threads <= 1 || self.cells.len() <= 1 {
            self.run_serial(horizon, Some(probes))
        } else {
            self.run_threaded(horizon, threads, Some(probes))
        }
    }

    /// The next global window: the minimum pending timestamp across all
    /// partitions, or `None` when every queue is empty.
    fn t_min(&mut self) -> Option<SimTime> {
        self.cells
            .iter_mut()
            .filter_map(|c| c.queue.peek_time())
            .min()
    }

    fn finish_run(&mut self, reason: StopReason, horizon: SimTime) -> StopReason {
        self.now = match reason {
            StopReason::HorizonReached => horizon,
            _ => self
                .cells
                .iter()
                .map(|c| c.last_time)
                .max()
                .unwrap_or(SimTime::ZERO),
        };
        reason
    }

    fn run_serial<P: Probe + Send>(
        &mut self,
        horizon: SimTime,
        mut probes: Option<&mut [P]>,
    ) -> StopReason {
        let parts = self.cells.len();
        loop {
            let Some(t_min) = self.t_min() else {
                return self.finish_run(StopReason::QueueEmpty, horizon);
            };
            if t_min > horizon {
                return self.finish_run(StopReason::HorizonReached, horizon);
            }
            let w_end = t_min + self.lookahead;
            for (i, cell) in self.cells.iter_mut().enumerate() {
                let probe = probes.as_deref_mut().map(|p| &mut p[i]);
                cell.execute_window(i, parts, self.lookahead, w_end, horizon, probe);
            }
            // Barrier: route every outbox into its destination, exactly
            // like the threaded exchange (self-deliveries included).
            let mut inboxes: Vec<Vec<Mail<M::Event>>> = (0..parts).map(|_| Vec::new()).collect();
            for cell in &mut self.cells {
                for (to, m) in cell.outbox.drain(..) {
                    inboxes[to].push(m);
                }
            }
            for (cell, inbox) in self.cells.iter_mut().zip(inboxes) {
                cell.deliver(inbox, w_end);
            }
            if self.cells.iter().any(|c| c.stop) {
                return self.finish_run(StopReason::StoppedByModel, horizon);
            }
        }
    }

    fn run_threaded<P: Probe + Send>(
        &mut self,
        horizon: SimTime,
        threads: usize,
        probes: Option<&mut [P]>,
    ) -> StopReason {
        let parts = self.cells.len();
        let lookahead = self.lookahead;
        // Contiguous partition chunks, one per worker. chunks_mut may
        // yield fewer chunks than requested threads; everything below is
        // sized to the actual worker count.
        let chunk = parts.div_ceil(threads.min(parts).max(2));
        let workers = parts.div_ceil(chunk);
        // Per-destination exchange cells. Senders append under the lock in
        // the execute phase; the owner drains after the barrier. Arrival
        // order under the mutex is nondeterministic, but `deliver` sorts by
        // `(time, tag)` and ties within one pair are single-sender (pushed
        // as one contiguous batch), so insertion order is deterministic.
        let grid: Vec<Mutex<Vec<Mail<M::Event>>>> =
            (0..parts).map(|_| Mutex::new(Vec::new())).collect();
        // Per-worker window minima as f64 bit patterns (non-negative
        // floats order like their bit patterns; empty = u64::MAX).
        let mins: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(u64::MAX)).collect();
        let stop_flag = AtomicBool::new(false);
        let barrier = Barrier::new(workers);

        let worker = |k: usize, cells: &mut [Cell<M, Q>], mut probes: Option<&mut [P]>| {
            let base = k * chunk;
            loop {
                // Phase 0: publish this worker's window minimum; after the
                // barrier every worker performs the same reduction, so all
                // agree on the window (and on termination) leaderlessly.
                let local = cells
                    .iter_mut()
                    .filter_map(|c| c.queue.peek_time())
                    .min()
                    .map(|t| t.as_secs().to_bits())
                    .unwrap_or(u64::MAX);
                mins[k].store(local, Ordering::Relaxed);
                barrier.wait();
                let global = mins
                    .iter()
                    .map(|m| m.load(Ordering::Relaxed))
                    .min()
                    .expect("at least one worker");
                if global == u64::MAX {
                    return StopReason::QueueEmpty;
                }
                let t_min = SimTime::from_secs(f64::from_bits(global));
                if t_min > horizon {
                    return StopReason::HorizonReached;
                }
                let w_end = t_min + lookahead;
                // Phase 1: execute own partitions, stage sends into the
                // grid grouped by destination (one contiguous batch per
                // lock acquisition keeps single-sender runs contiguous).
                for (j, cell) in cells.iter_mut().enumerate() {
                    let probe = probes.as_deref_mut().map(|p| &mut p[j]);
                    cell.execute_window(base + j, parts, lookahead, w_end, horizon, probe);
                    if !cell.outbox.is_empty() {
                        let mut staged = std::mem::take(&mut cell.outbox);
                        staged.sort_by_key(|(to, _)| *to); // stable: send order kept per dest
                        {
                            let mut iter = staged.drain(..).peekable();
                            while let Some(to) = iter.peek().map(|(t, _)| *t) {
                                let mut dest = grid[to].lock().expect("grid lock");
                                while iter.peek().is_some_and(|(t, _)| *t == to) {
                                    dest.push(iter.next().expect("peeked").1);
                                }
                            }
                        }
                        cell.outbox = staged;
                    }
                    if cell.stop {
                        stop_flag.store(true, Ordering::Relaxed);
                    }
                }
                barrier.wait();
                // Phase 2: deliver own partitions' inboxes. No barrier
                // before the next round's phase-0 wait is needed: round
                // r+1 sends cannot land until every worker passes that
                // wait, which requires all round-r deliveries done.
                for (j, cell) in cells.iter_mut().enumerate() {
                    let inbox = std::mem::take(&mut *grid[base + j].lock().expect("grid lock"));
                    cell.deliver(inbox, w_end);
                }
                if stop_flag.load(Ordering::Relaxed) {
                    return StopReason::StoppedByModel;
                }
            }
        };

        let mut cell_chunks: Vec<&mut [Cell<M, Q>]> = self.cells.chunks_mut(chunk).collect();
        let mut probe_chunks: Vec<Option<&mut [P]>> = match probes {
            Some(p) => p.chunks_mut(chunk).map(Some).collect(),
            None => (0..workers).map(|_| None).collect(),
        };
        debug_assert_eq!(cell_chunks.len(), workers);
        let reason = std::thread::scope(|scope| {
            // Workers 1.. spawn; worker 0 runs on the caller thread.
            let handles: Vec<_> = cell_chunks
                .drain(1..)
                .zip(probe_chunks.drain(1..))
                .enumerate()
                .map(|(k, (cells, probes))| {
                    let worker = &worker;
                    scope.spawn(move || worker(k + 1, cells, probes))
                })
                .collect();
            let r0 = worker(0, cell_chunks.remove(0), probe_chunks.remove(0));
            for h in handles {
                let rk = h.join().expect("partition worker panicked");
                debug_assert_eq!(rk.as_str(), r0.as_str(), "workers disagreed on stop");
            }
            r0
        });
        self.finish_run(reason, horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::EventQueue;
    use wt_obs::SimProbe;

    /// A shard-decomposed ping model: each partition owns a set of shard
    /// ids; every shard keeps a local timer chain and occasionally mails
    /// a token to a peer shard (possibly co-located) with delay >=
    /// lookahead. All state and randomness is per-shard, so results must
    /// be invariant to thread count AND to how shards map to partitions.
    #[derive(Debug, Clone)]
    struct Shard {
        id: u64,
        total_shards: u64,
        ticks: u64,
        tokens: u64,
        acc: u64,
        rng: crate::rng::Stream,
    }

    #[derive(Debug, Clone)]
    enum Ev {
        Tick { shard: u64 },
        Token { shard: u64, payload: u64 },
    }

    struct PingModel {
        shards: Vec<Shard>,
        /// Global shard -> partition map (shared, immutable).
        owner: std::sync::Arc<Vec<usize>>,
    }

    const LA: f64 = 5.0;

    impl PingModel {
        fn shard_mut(&mut self, id: u64) -> &mut Shard {
            self.shards
                .iter_mut()
                .find(|s| s.id == id)
                .expect("event routed to owning partition")
        }
    }

    impl PartitionModel for PingModel {
        type Event = Ev;
        fn handle(&mut self, ev: Ev, ctx: &mut PartCtx<'_, Ev>) {
            match ev {
                Ev::Tick { shard } => {
                    let owner = self.owner.clone();
                    let s = self.shard_mut(shard);
                    s.ticks += 1;
                    let gap = 0.5 + s.rng.uniform() * 3.0;
                    let ticks = s.ticks;
                    let id = s.id;
                    let n = s.total_shards;
                    let payload = s.rng.next();
                    ctx.schedule_in(SimDuration::from_secs(gap), Ev::Tick { shard });
                    if ticks.is_multiple_of(3) && n > 1 {
                        // Mail a peer shard; route via its owning partition.
                        let peer = (id + 1 + payload % (n - 1)) % n;
                        let delay = LA + (payload % 7) as f64;
                        ctx.send(
                            owner[peer as usize],
                            SimDuration::from_secs(delay),
                            id,
                            Ev::Token {
                                shard: peer,
                                payload,
                            },
                        );
                        ctx.mark("token_sent");
                    }
                }
                Ev::Token { shard, payload } => {
                    let s = self.shard_mut(shard);
                    s.tokens += 1;
                    s.acc = s.acc.wrapping_mul(0x9E37_79B9).wrapping_add(payload);
                    ctx.observe("token_payload", (payload % 1000) as f64);
                }
            }
        }
        fn label(ev: &Ev) -> &'static str {
            match ev {
                Ev::Tick { .. } => "Tick",
                Ev::Token { .. } => "Token",
            }
        }
    }

    /// Builds a run with `total_shards` shards grouped into `parts`
    /// contiguous partitions; returns the sim ready to run.
    fn build(
        total_shards: u64,
        parts: usize,
        seed: u64,
    ) -> PartitionedSimulation<PingModel, EventQueue<Ev>> {
        let owner: std::sync::Arc<Vec<usize>> = std::sync::Arc::new(
            (0..total_shards)
                .map(|s| (s as usize * parts) / total_shards as usize)
                .collect(),
        );
        let factory = RngFactory::new(seed);
        let models = (0..parts)
            .map(|p| PingModel {
                shards: (0..total_shards)
                    .filter(|s| owner[*s as usize] == p)
                    .map(|id| Shard {
                        id,
                        total_shards,
                        ticks: 0,
                        tokens: 0,
                        acc: 0,
                        // Shard-keyed (not partition-keyed) randomness:
                        // the partition-count-invariance requirement.
                        rng: factory.numbered("shard", id),
                    })
                    .collect(),
                owner: owner.clone(),
            })
            .collect();
        let mut sim = PartitionedSimulation::new(models, seed, Lookahead::from_secs(LA));
        for s in 0..total_shards {
            let phase = 0.25 * (s as f64 + 1.0);
            sim.schedule_at(
                owner[s as usize],
                SimTime::ZERO + SimDuration::from_secs(phase),
                Ev::Tick { shard: s },
            );
        }
        sim
    }

    /// Global fingerprint in shard order: invariant to partitioning.
    fn fingerprint(
        sim: &PartitionedSimulation<PingModel, EventQueue<Ev>>,
    ) -> Vec<(u64, u64, u64, u64)> {
        let mut shards: Vec<_> = sim
            .models()
            .flat_map(|m| m.shards.iter())
            .map(|s| (s.id, s.ticks, s.tokens, s.acc))
            .collect();
        shards.sort();
        shards
    }

    #[test]
    fn serial_and_threaded_agree_bitwise() {
        let horizon = SimTime::from_secs(400.0);
        let mut gold = build(8, 4, 42);
        let reason = gold.run_until(horizon);
        assert_eq!(reason.as_str(), "HorizonReached");
        assert!(gold.events_executed() > 500, "{}", gold.events_executed());
        for threads in [2, 3, 4, 8] {
            let mut sim = build(8, 4, 42);
            let r = sim.run_until_threaded(horizon, threads);
            assert_eq!(r.as_str(), reason.as_str());
            assert_eq!(sim.events_executed(), gold.events_executed());
            assert_eq!(sim.part_events(), gold.part_events());
            assert_eq!(fingerprint(&sim), fingerprint(&gold));
            assert_eq!(sim.now(), gold.now());
        }
    }

    #[test]
    fn partition_count_is_semantically_invisible_for_shard_keyed_models() {
        let horizon = SimTime::from_secs(300.0);
        let mut gold = build(12, 1, 7);
        gold.run_until(horizon);
        let gold_fp = fingerprint(&gold);
        let gold_events = gold.events_executed();
        for parts in [2, 3, 4, 6, 12] {
            let mut sim = build(12, parts, 7);
            sim.run_until_threaded(horizon, 4);
            assert_eq!(fingerprint(&sim), gold_fp, "diverged at {parts} partitions");
            assert_eq!(sim.events_executed(), gold_events);
        }
    }

    #[test]
    fn probed_runs_agree_and_observe_everything() {
        let horizon = SimTime::from_secs(200.0);
        let run = |threads: usize| {
            let mut sim = build(6, 3, 9);
            let mut probes: Vec<SimProbe> = (0..3).map(|_| SimProbe::new()).collect();
            let reason = sim.run_until_probed(horizon, threads, &mut probes);
            let events = sim.events_executed();
            let telem: Vec<_> = probes
                .iter()
                .map(|p| p.finish(sim.now().as_secs(), reason.as_str()))
                .collect();
            (events, telem)
        };
        let (gold_events, gold_telem) = run(1);
        let probe_total: u64 = gold_telem.iter().map(|t| t.events).sum();
        assert_eq!(probe_total, gold_events, "probes see every event");
        assert!(
            gold_telem
                .iter()
                .any(|t| t.marks.contains_key("token_sent")),
            "marks flow through"
        );
        assert!(
            gold_telem
                .iter()
                .any(|t| t.sketches.as_ref().is_some_and(|s| !s.is_empty())),
            "observations flow through"
        );
        for threads in [2, 3] {
            let (events, telem) = run(threads);
            assert_eq!(events, gold_events);
            assert_eq!(telem, gold_telem, "telemetry diverged at {threads} threads");
        }
    }

    #[test]
    fn queue_empty_and_stop_reasons() {
        // No events at all.
        let mut sim = build(4, 2, 1);
        // Drain the seeded ticks with a tiny horizon first — horizon stop.
        let r = sim.run_until(SimTime::from_secs(0.1));
        assert_eq!(r.as_str(), "HorizonReached");
        assert_eq!(sim.now(), SimTime::from_secs(0.1));

        // A model that stops: reuse Tick handler via a stop wrapper is
        // overkill; drive stop() through a one-off model.
        struct Stopper;
        impl PartitionModel for Stopper {
            type Event = u32;
            fn handle(&mut self, ev: u32, ctx: &mut PartCtx<'_, u32>) {
                if ev == 3 {
                    ctx.stop();
                } else {
                    ctx.schedule_in(SimDuration::from_secs(1.0), ev + 1);
                }
            }
        }
        let mut sim: PartitionedSimulation<Stopper, EventQueue<u32>> =
            PartitionedSimulation::new(vec![Stopper, Stopper], 1, Lookahead::from_secs(1.0));
        sim.schedule_at(0, SimTime::ZERO, 0);
        let r = sim.run_until(SimTime::from_secs(100.0));
        assert_eq!(r.as_str(), "StoppedByModel");
        assert_eq!(sim.events_executed(), 4);

        // Queues drain when nothing reschedules.
        struct OneShot;
        impl PartitionModel for OneShot {
            type Event = ();
            fn handle(&mut self, _ev: (), _ctx: &mut PartCtx<'_, ()>) {}
        }
        let mut sim: PartitionedSimulation<OneShot, EventQueue<()>> =
            PartitionedSimulation::new(vec![OneShot, OneShot], 1, Lookahead::from_secs(1.0));
        sim.schedule_at(1, SimTime::from_secs(2.0), ());
        let r = sim.run_until(SimTime::from_secs(100.0));
        assert_eq!(r.as_str(), "QueueEmpty");
        assert_eq!(sim.now(), SimTime::from_secs(2.0));
        assert_eq!(sim.events_executed(), 1);
    }

    #[test]
    #[should_panic(expected = "violates lookahead")]
    fn short_sends_are_rejected() {
        struct Bad;
        impl PartitionModel for Bad {
            type Event = ();
            fn handle(&mut self, _ev: (), ctx: &mut PartCtx<'_, ()>) {
                ctx.send(0, SimDuration::from_secs(0.5), 0, ());
            }
        }
        let mut sim: PartitionedSimulation<Bad, EventQueue<()>> =
            PartitionedSimulation::new(vec![Bad], 1, Lookahead::from_secs(1.0));
        sim.schedule_at(0, SimTime::ZERO, ());
        sim.run_until(SimTime::from_secs(10.0));
    }

    #[test]
    fn per_partition_rng_is_content_derived() {
        let f = RngFactory::new(123);
        let a = f.subfactory("partition", 0);
        let b = f.subfactory("partition", 1);
        assert_ne!(a.root_seed(), b.root_seed());
        // Stable across calls — scheduling cannot perturb it.
        assert_eq!(f.subfactory("partition", 0).root_seed(), a.root_seed());
    }
}
