//! The simulation engine: drives a [`Model`] by repeatedly popping the
//! earliest pending event and handing it to the model together with a
//! scheduling context [`Ctx`].
//!
//! The engine is deliberately single-threaded; parallelism in the wind
//! tunnel happens *across* simulation runs (see `wt-wtql`), which is both
//! simpler and — for the replications-of-independent-runs workloads the
//! paper targets — faster than intra-run parallel DES.

use crate::pending::PendingEvents;
use crate::queue::EventQueue;
use crate::rng::RngFactory;
use crate::time::{SimDuration, SimTime};
use wt_obs::Probe;

/// A simulation model: owns all mutable world state and reacts to events.
///
/// `Event` is typically an enum covering everything that can happen in the
/// modeled world (a disk fails, a request completes, a repair finishes, ...).
pub trait Model {
    /// The event alphabet of this model.
    type Event;

    /// Reacts to one event. New events are scheduled through `ctx`.
    fn handle(&mut self, ev: Self::Event, ctx: &mut Ctx<'_, Self::Event>);

    /// A static label for `ev`, used by probes to attribute events (and
    /// trace spans) to the model's alphabet. The default lumps everything
    /// under one label; models with an event enum should match on the
    /// variant.
    fn label(_ev: &Self::Event) -> &'static str {
        "event"
    }
}

/// Why a call to [`Simulation::run`] / [`Simulation::run_until`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// No pending events remain.
    QueueEmpty,
    /// The requested time horizon was reached; later events are still pending.
    HorizonReached,
    /// The model called [`Ctx::stop`].
    StoppedByModel,
    /// The configured event budget was exhausted (used by the wind tunnel's
    /// early-abort machinery).
    EventBudgetExhausted,
}

impl StopReason {
    /// The variant name, for telemetry records.
    pub fn as_str(self) -> &'static str {
        match self {
            StopReason::QueueEmpty => "QueueEmpty",
            StopReason::HorizonReached => "HorizonReached",
            StopReason::StoppedByModel => "StoppedByModel",
            StopReason::EventBudgetExhausted => "EventBudgetExhausted",
        }
    }
}

/// Scheduling context passed to [`Model::handle`]: the clock, the event
/// queue, the RNG factory and the stop flag.
///
/// The queue is held as `&mut dyn PendingEvents<E>` so that
/// [`Model::handle`]'s signature is independent of the engine's backend
/// choice: models compile once, scheduling pays one indirect call, and
/// the engine's pop/peek loop stays fully monomorphized.
pub struct Ctx<'a, E> {
    now: SimTime,
    queue: &'a mut dyn PendingEvents<E>,
    rng: &'a mut RngFactory,
    stop: &'a mut bool,
    executed: u64,
    // Marks emitted by the handler, drained into the probe by the engine
    // after the handler returns. A plain buffer rather than `&mut dyn
    // Probe` so the trait object's invariant lifetime never entangles
    // `Ctx`'s borrows. `None` when the run is unprobed.
    marks: Option<&'a mut Vec<&'static str>>,
    // Scalar observations (label, value) emitted via `Ctx::observe`,
    // drained like marks. `None` when unprobed.
    values: Option<&'a mut Vec<(&'static str, f64)>>,
    // Distinct-key touches (label, key) emitted via `Ctx::touch`,
    // drained like marks. `None` when unprobed.
    touches: Option<&'a mut Vec<(&'static str, u64)>>,
}

impl<E> Ctx<'_, E> {
    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire `delay` after now.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.queue.push(self.now + delay, event);
    }

    /// Schedules `event` at an absolute time. Panics if `at` is in the past —
    /// causality violations are model bugs, not recoverable conditions. The
    /// message carries the queue length and executed-event count so a trace
    /// of the offending run can be cut to size before replaying it.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at} < {} (queue: {} pending, {} events executed)",
            self.now,
            self.queue.len(),
            self.executed
        );
        self.queue.push(at, event);
    }

    /// The run's RNG factory, for creating labeled streams lazily.
    pub fn rng(&mut self) -> &mut RngFactory {
        self.rng
    }

    /// Requests that the engine stop after this event completes.
    pub fn stop(&mut self) {
        *self.stop = true;
    }

    /// Number of events currently pending.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Number of events the run has executed so far (including this one).
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Emits a custom counter mark to the run's probe, if one is
    /// attached (see `wt_obs::Probe::on_mark`). Free when unprobed;
    /// never affects the simulation either way.
    pub fn mark(&mut self, label: &'static str) {
        if let Some(buf) = self.marks.as_deref_mut() {
            buf.push(label);
        }
    }

    /// Emits a scalar observation (a wait, a duration, a latency) to the
    /// run's probe, if one is attached; summary probes fold these into
    /// per-label quantile sketches (see `wt_obs::Probe::on_value`). Free
    /// when unprobed; never affects the simulation either way.
    pub fn observe(&mut self, label: &'static str, value: f64) {
        if let Some(buf) = self.values.as_deref_mut() {
            buf.push((label, value));
        }
    }

    /// Emits an entity-key touch (an object id, a request key) to the
    /// run's probe, if one is attached; summary probes fold these into
    /// per-label HLL distinct counts (see `wt_obs::Probe::on_distinct`).
    /// Free when unprobed; never affects the simulation either way.
    pub fn touch(&mut self, label: &'static str, key: u64) {
        if let Some(buf) = self.touches.as_deref_mut() {
            buf.push((label, key));
        }
    }
}

/// A single simulation run: a [`Model`], its future-event list, clock,
/// RNG factory and execution counters.
///
/// Generic over the future-event list `Q` (default: the binary-heap
/// [`EventQueue`]). Because every [`PendingEvents`] backend honors the
/// same `(time, seq)` pop order, the backend choice affects wall-clock
/// time only — event order, RNG draws and results are identical.
pub struct Simulation<M: Model, Q: PendingEvents<M::Event> = EventQueue<<M as Model>::Event>> {
    model: M,
    queue: Q,
    rng: RngFactory,
    now: SimTime,
    executed: u64,
    event_budget: Option<u64>,
}

impl<M: Model> Simulation<M> {
    /// Creates a run over `model` with the default binary-heap event
    /// queue, all randomness derived from `seed`.
    pub fn new(model: M, seed: u64) -> Self {
        Self::with_queue(model, seed, EventQueue::new())
    }
}

impl<M: Model, Q: PendingEvents<M::Event>> Simulation<M, Q> {
    /// Creates a run over `model` using `queue` as the future-event list
    /// (e.g. a [`CalendarQueue`](crate::CalendarQueue)); all randomness
    /// derived from `seed`. The queue must be empty.
    pub fn with_queue(model: M, seed: u64, queue: Q) -> Self {
        debug_assert!(queue.is_empty(), "backend queue must start empty");
        Simulation {
            model,
            queue,
            rng: RngFactory::new(seed),
            now: SimTime::ZERO,
            executed: 0,
            event_budget: None,
        }
    }

    /// Pre-allocates queue room for at least `additional` pending events
    /// (a hint; see [`PendingEvents::reserve`]). Engines that know their
    /// steady-state pending-set size — e.g. one timer per component —
    /// call this once at setup so the hot loop never regrows the list.
    pub fn reserve_events(&mut self, additional: usize) {
        self.queue.reserve(additional);
    }

    /// Caps the total number of events this run may execute; the engine
    /// returns [`StopReason::EventBudgetExhausted`] once reached.
    pub fn set_event_budget(&mut self, budget: u64) {
        self.event_budget = Some(budget);
    }

    /// Schedules an initial event (typically called before the first `run`).
    pub fn schedule_at(&mut self, at: SimTime, event: M::Event) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.queue.push(at, event);
    }

    /// Schedules an initial event `delay` after the current clock.
    pub fn schedule_in(&mut self, delay: SimDuration, event: M::Event) {
        self.queue.push(self.now + delay, event);
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Immutable access to the model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutable access to the model (for setup and for reading out statistics).
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// The run's RNG factory (for seeding model streams during setup).
    pub fn rng(&mut self) -> &mut RngFactory {
        &mut self.rng
    }

    /// Events currently pending in the future-event list.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Executes exactly one event, if any is pending. Returns `false` when
    /// the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some((time, ev)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(time >= self.now, "event queue returned a past event");
        self.now = time;
        self.executed += 1;
        let mut stop = false;
        let mut ctx = Ctx {
            now: self.now,
            queue: &mut self.queue,
            rng: &mut self.rng,
            stop: &mut stop,
            executed: self.executed,
            marks: None,
            values: None,
            touches: None,
        };
        self.model.handle(ev, &mut ctx);
        true
    }

    /// Runs until the queue drains, the model stops, or the budget runs out.
    pub fn run(&mut self) -> StopReason {
        self.run_until(SimTime::MAX)
    }

    /// [`Simulation::run`] with a probe observing every handled event.
    pub fn run_probed(&mut self, probe: &mut dyn Probe) -> StopReason {
        self.run_until_probed(SimTime::MAX, probe)
    }

    /// Runs until `horizon` (exclusive: events strictly after it stay
    /// pending and the clock is left at `horizon`), the queue drains, the
    /// model stops, or the budget runs out.
    ///
    /// This is the probe-free loop, monomorphized per backend with no
    /// probe checks inside — attaching observability costs nothing when
    /// it is not used ([`run_until_probed`](Self::run_until_probed) is a
    /// separate loop).
    pub fn run_until(&mut self, horizon: SimTime) -> StopReason {
        loop {
            if let Some(budget) = self.event_budget {
                if self.executed >= budget {
                    return StopReason::EventBudgetExhausted;
                }
            }
            let Some(next) = self.queue.peek_time() else {
                return StopReason::QueueEmpty;
            };
            if next > horizon {
                self.now = horizon;
                return StopReason::HorizonReached;
            }
            let (time, ev) = self.queue.pop().expect("peeked entry vanished");
            self.now = time;
            self.executed += 1;
            let mut stop = false;
            let mut ctx = Ctx {
                now: self.now,
                queue: &mut self.queue,
                rng: &mut self.rng,
                stop: &mut stop,
                executed: self.executed,
                marks: None,
                values: None,
                touches: None,
            };
            self.model.handle(ev, &mut ctx);
            if stop {
                return StopReason::StoppedByModel;
            }
        }
    }

    /// [`Simulation::run_until`] with a probe observing every handled
    /// event. Probes are one-way (they cannot schedule or draw
    /// randomness), so the simulation's results are identical with or
    /// without one attached; only with the crate's `wall-time` feature
    /// does the engine additionally time each handler and report it via
    /// `Probe::on_handler_wall`.
    ///
    /// Generic over the probe type so a concrete probe (the usual
    /// [`wt_obs::SimProbe`]) gets its `on_event` inlined into the event
    /// loop — the virtual dispatch would otherwise rival the work it
    /// guards. `&mut dyn Probe` still satisfies the bound for callers
    /// that only have a trait object.
    pub fn run_until_probed<P: Probe + ?Sized>(
        &mut self,
        horizon: SimTime,
        probe: &mut P,
    ) -> StopReason {
        let mut mark_buf: Vec<&'static str> = Vec::new();
        let mut value_buf: Vec<(&'static str, f64)> = Vec::new();
        let mut touch_buf: Vec<(&'static str, u64)> = Vec::new();
        loop {
            if let Some(budget) = self.event_budget {
                if self.executed >= budget {
                    return StopReason::EventBudgetExhausted;
                }
            }
            let Some(next) = self.queue.peek_time() else {
                return StopReason::QueueEmpty;
            };
            if next > horizon {
                self.now = horizon;
                return StopReason::HorizonReached;
            }
            let (time, ev) = self.queue.pop().expect("peeked entry vanished");
            self.now = time;
            self.executed += 1;
            let label = M::label(&ev);
            #[cfg(feature = "wall-time")]
            let handler_start = std::time::Instant::now();
            let mut stop = false;
            let mut ctx = Ctx {
                now: self.now,
                queue: &mut self.queue,
                rng: &mut self.rng,
                stop: &mut stop,
                executed: self.executed,
                marks: Some(&mut mark_buf),
                values: Some(&mut value_buf),
                touches: Some(&mut touch_buf),
            };
            self.model.handle(ev, &mut ctx);
            for mark in mark_buf.drain(..) {
                probe.on_mark(mark);
            }
            for (label, value) in value_buf.drain(..) {
                probe.on_value(label, value);
            }
            for (label, key) in touch_buf.drain(..) {
                probe.on_distinct(label, key);
            }
            #[cfg(feature = "wall-time")]
            probe.on_handler_wall(label, handler_start.elapsed().as_nanos() as u64);
            probe.on_event(label, self.now.as_secs(), self.queue.len());
            if stop {
                return StopReason::StoppedByModel;
            }
        }
    }

    /// Consumes the run and returns the model (for extracting final results).
    pub fn into_model(self) -> M {
        self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A model that re-schedules itself `limit` times at a fixed period.
    struct Ticker {
        period: SimDuration,
        limit: u32,
        fired: u32,
        fire_times: Vec<SimTime>,
    }

    impl Model for Ticker {
        type Event = ();
        fn handle(&mut self, _: (), ctx: &mut Ctx<'_, ()>) {
            self.fired += 1;
            self.fire_times.push(ctx.now());
            if self.fired < self.limit {
                ctx.schedule_in(self.period, ());
            }
        }
    }

    fn ticker(period: f64, limit: u32) -> Ticker {
        Ticker {
            period: SimDuration::from_secs(period),
            limit,
            fired: 0,
            fire_times: Vec::new(),
        }
    }

    #[test]
    fn runs_to_queue_empty() {
        let mut sim = Simulation::new(ticker(1.0, 5), 1);
        sim.schedule_at(SimTime::ZERO, ());
        assert_eq!(sim.run(), StopReason::QueueEmpty);
        assert_eq!(sim.model().fired, 5);
        assert_eq!(sim.now(), SimTime::from_secs(4.0));
        assert_eq!(sim.events_executed(), 5);
    }

    #[test]
    fn horizon_stops_and_preserves_pending() {
        let mut sim = Simulation::new(ticker(1.0, 100), 1);
        sim.schedule_at(SimTime::ZERO, ());
        assert_eq!(
            sim.run_until(SimTime::from_secs(2.5)),
            StopReason::HorizonReached
        );
        assert_eq!(sim.model().fired, 3); // t = 0, 1, 2
        assert_eq!(sim.now(), SimTime::from_secs(2.5));
        // Resuming picks up where we left off.
        assert_eq!(
            sim.run_until(SimTime::from_secs(4.5)),
            StopReason::HorizonReached
        );
        assert_eq!(sim.model().fired, 5);
    }

    #[test]
    fn event_budget_aborts() {
        let mut sim = Simulation::new(ticker(1.0, 1000), 1);
        sim.schedule_at(SimTime::ZERO, ());
        sim.set_event_budget(10);
        assert_eq!(sim.run(), StopReason::EventBudgetExhausted);
        assert_eq!(sim.events_executed(), 10);
    }

    struct Stopper;
    impl Model for Stopper {
        type Event = u32;
        fn handle(&mut self, ev: u32, ctx: &mut Ctx<'_, u32>) {
            if ev == 3 {
                ctx.stop();
            } else {
                ctx.schedule_in(SimDuration::from_secs(1.0), ev + 1);
            }
        }
    }

    #[test]
    fn model_can_stop() {
        let mut sim = Simulation::new(Stopper, 1);
        sim.schedule_at(SimTime::ZERO, 0);
        assert_eq!(sim.run(), StopReason::StoppedByModel);
        assert_eq!(sim.now(), SimTime::from_secs(3.0));
    }

    #[test]
    fn step_executes_one_event() {
        let mut sim = Simulation::new(ticker(1.0, 3), 1);
        sim.schedule_at(SimTime::ZERO, ());
        assert!(sim.step());
        assert_eq!(sim.model().fired, 1);
        assert!(sim.step());
        assert!(sim.step());
        assert!(!sim.step());
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut sim = Simulation::new(ticker(1.0, 2), 1);
        sim.schedule_at(SimTime::ZERO, ());
        sim.run();
        sim.schedule_at(SimTime::ZERO, ());
    }

    /// Schedules forward until t=2, then tries to schedule back at t=0.
    struct PastScheduler;
    impl Model for PastScheduler {
        type Event = u32;
        fn handle(&mut self, ev: u32, ctx: &mut Ctx<'_, u32>) {
            if ev == 2 {
                ctx.schedule_at(SimTime::ZERO, 99);
            } else {
                ctx.schedule_in(SimDuration::from_secs(1.0), ev + 1);
            }
        }
    }

    #[test]
    fn past_panic_reports_queue_and_executed_counts() {
        let result = std::panic::catch_unwind(|| {
            let mut sim = Simulation::new(PastScheduler, 1);
            sim.schedule_at(SimTime::ZERO, 0);
            sim.schedule_at(SimTime::from_secs(10.0), 7); // stays pending
            sim.run();
        });
        let payload = result.unwrap_err();
        let msg = payload.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("cannot schedule into the past"), "{msg}");
        // Events at t = 0, 1, 2 executed; the t = 10 event still queued.
        assert!(msg.contains("1 pending"), "{msg}");
        assert!(msg.contains("3 events executed"), "{msg}");
    }

    #[test]
    fn identical_seeds_identical_traces() {
        let trace = |seed| {
            let mut sim = Simulation::new(ticker(0.5, 50), seed);
            sim.schedule_at(SimTime::ZERO, ());
            sim.run();
            sim.into_model().fire_times
        };
        assert_eq!(trace(7), trace(7));
    }

    // --- StopReason × counter interplay -----------------------------------

    #[test]
    fn queue_empty_leaves_no_pending_events() {
        let mut sim = Simulation::new(ticker(1.0, 5), 1);
        sim.schedule_at(SimTime::ZERO, ());
        assert_eq!(sim.run(), StopReason::QueueEmpty);
        assert_eq!(sim.events_executed(), 5);
        assert_eq!(sim.pending_events(), 0);
    }

    #[test]
    fn horizon_reached_preserves_exact_pending_count() {
        // One self-rescheduling chain plus two far-future events.
        let mut sim = Simulation::new(ticker(1.0, 100), 1);
        sim.schedule_at(SimTime::ZERO, ());
        sim.schedule_at(SimTime::from_secs(50.0), ());
        sim.schedule_at(SimTime::from_secs(60.0), ());
        assert_eq!(
            sim.run_until(SimTime::from_secs(2.5)),
            StopReason::HorizonReached
        );
        // t = 0, 1, 2 fired; the chain's next tick and both far events wait.
        assert_eq!(sim.events_executed(), 3);
        assert_eq!(sim.pending_events(), 3);
        assert_eq!(sim.now(), SimTime::from_secs(2.5));
    }

    #[test]
    fn stopped_by_model_counts_the_stopping_event() {
        let mut sim = Simulation::new(Stopper, 1);
        sim.schedule_at(SimTime::ZERO, 0);
        sim.schedule_at(SimTime::from_secs(100.0), 9); // never reached
        assert_eq!(sim.run(), StopReason::StoppedByModel);
        // Events 0..=3 executed (the ev == 3 handler called stop).
        assert_eq!(sim.events_executed(), 4);
        // The stop event scheduled nothing; only the far event remains.
        assert_eq!(sim.pending_events(), 1);
    }

    #[test]
    fn budget_exhausted_counts_stop_at_the_cap() {
        let mut sim = Simulation::new(ticker(1.0, 1000), 1);
        sim.schedule_at(SimTime::ZERO, ());
        sim.set_event_budget(10);
        assert_eq!(sim.run(), StopReason::EventBudgetExhausted);
        assert_eq!(sim.events_executed(), 10);
        // The chain's next tick is still queued: the budget cuts the run
        // mid-flight, it does not drain the queue.
        assert_eq!(sim.pending_events(), 1);
        // Re-running without a bigger budget stops immediately at the cap.
        assert_eq!(sim.run(), StopReason::EventBudgetExhausted);
        assert_eq!(sim.events_executed(), 10);
    }

    #[test]
    fn stop_reason_strings_cover_all_variants() {
        assert_eq!(StopReason::QueueEmpty.as_str(), "QueueEmpty");
        assert_eq!(StopReason::HorizonReached.as_str(), "HorizonReached");
        assert_eq!(StopReason::StoppedByModel.as_str(), "StoppedByModel");
        assert_eq!(
            StopReason::EventBudgetExhausted.as_str(),
            "EventBudgetExhausted"
        );
    }

    // --- Probe integration ------------------------------------------------

    /// Ticker with per-parity labels and a custom mark on odd ticks.
    struct LabeledTicker {
        limit: u32,
        fired: u32,
    }

    impl Model for LabeledTicker {
        type Event = u32;
        fn handle(&mut self, ev: u32, ctx: &mut Ctx<'_, u32>) {
            self.fired += 1;
            if ev % 2 == 1 {
                ctx.mark("odd_tick");
            }
            if self.fired < self.limit {
                ctx.schedule_in(SimDuration::from_secs(1.0), ev + 1);
            }
        }
        fn label(ev: &u32) -> &'static str {
            if ev.is_multiple_of(2) {
                "even"
            } else {
                "odd"
            }
        }
    }

    #[test]
    fn probe_observes_every_event_with_labels_and_marks() {
        let mut probe = wt_obs::SimProbe::new();
        let mut sim = Simulation::new(LabeledTicker { limit: 7, fired: 0 }, 1);
        sim.schedule_at(SimTime::ZERO, 0);
        let reason = sim.run_probed(&mut probe);
        assert_eq!(reason, StopReason::QueueEmpty);
        assert_eq!(probe.events(), sim.events_executed());
        let t = probe.finish(sim.now().as_secs(), reason.as_str());
        assert_eq!(t.events, 7);
        assert_eq!(t.events_by_label["even"], 4); // 0, 2, 4, 6
        assert_eq!(t.events_by_label["odd"], 3); // 1, 3, 5
        assert_eq!(t.marks["odd_tick"], 3);
        assert_eq!(t.stop_reason, "QueueEmpty");
        assert_eq!(t.horizon_s, 6.0);
    }

    #[test]
    fn probed_and_unprobed_runs_are_identical() {
        let run = |probed: bool| {
            let mut sim = Simulation::new(ticker(0.5, 50), 11);
            sim.schedule_at(SimTime::ZERO, ());
            let reason = if probed {
                let mut p = wt_obs::SimProbe::new();
                sim.run_until_probed(SimTime::from_secs(20.0), &mut p)
            } else {
                sim.run_until(SimTime::from_secs(20.0))
            };
            (reason, sim.events_executed(), sim.into_model().fire_times)
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn probe_sees_queue_depth_after_each_handler() {
        struct Burst;
        impl Model for Burst {
            type Event = u8;
            fn handle(&mut self, ev: u8, ctx: &mut Ctx<'_, u8>) {
                if ev == 0 {
                    // Fan out three follow-ups.
                    for i in 1..=3 {
                        ctx.schedule_in(SimDuration::from_secs(i as f64), 1);
                    }
                }
            }
        }
        let mut probe = wt_obs::SimProbe::new();
        let mut sim = Simulation::new(Burst, 1);
        sim.schedule_at(SimTime::ZERO, 0);
        sim.run_probed(&mut probe);
        // Depth right after the fan-out event was 3.
        assert_eq!(probe.peak_queue_depth(), 3);
        assert_eq!(probe.events(), 4);
    }

    // --- Backend genericity ----------------------------------------------

    /// One full engine run (reason, counters, clock, model trace) on the
    /// given queue backend.
    fn ticker_run<Q: crate::PendingEvents<()>>(
        queue: Q,
        probed: bool,
    ) -> (StopReason, u64, SimTime, Vec<SimTime>) {
        let mut sim = Simulation::with_queue(ticker(0.5, 50), 11, queue);
        sim.reserve_events(8);
        sim.schedule_at(SimTime::ZERO, ());
        let horizon = SimTime::from_secs(20.0);
        let reason = if probed {
            let mut p = wt_obs::SimProbe::new();
            sim.run_until_probed(horizon, &mut p)
        } else {
            sim.run_until(horizon)
        };
        (
            reason,
            sim.events_executed(),
            sim.now(),
            sim.into_model().fire_times,
        )
    }

    #[test]
    fn calendar_backend_runs_identically_to_heap() {
        let heap = ticker_run(crate::EventQueue::new(), false);
        let cal = ticker_run(crate::CalendarQueue::new(), false);
        assert_eq!(heap, cal);
        // And probed runs agree with both, across backends.
        assert_eq!(ticker_run(crate::CalendarQueue::new(), true), heap);
    }

    #[test]
    fn ctx_schedules_through_the_backend_trait() {
        // A model whose handler inspects Ctx queue state exercises the
        // dyn-dispatched path on a non-default backend.
        struct Inspector {
            depths: Vec<usize>,
        }
        impl Model for Inspector {
            type Event = u32;
            fn handle(&mut self, ev: u32, ctx: &mut Ctx<'_, u32>) {
                self.depths.push(ctx.pending_events());
                if ev < 5 {
                    ctx.schedule_in(SimDuration::from_secs(1.0), ev + 1);
                }
            }
        }
        let mut sim = Simulation::with_queue(
            Inspector { depths: Vec::new() },
            3,
            crate::CalendarQueue::new(),
        );
        sim.schedule_at(SimTime::ZERO, 0);
        assert_eq!(sim.run(), StopReason::QueueEmpty);
        assert_eq!(sim.model().depths, vec![0; 6]);
    }

    #[test]
    fn marks_without_probe_are_free_and_safe() {
        let mut sim = Simulation::new(LabeledTicker { limit: 5, fired: 0 }, 1);
        sim.schedule_at(SimTime::ZERO, 0);
        assert_eq!(sim.run(), StopReason::QueueEmpty); // mark() hits the None path
        assert_eq!(sim.events_executed(), 5);
    }
}
