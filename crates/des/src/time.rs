//! Simulation time.
//!
//! Time is kept as `f64` seconds wrapped in newtypes so that wall-clock and
//! simulated durations cannot be confused, and so that ordering is total
//! (NaN is rejected at construction).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant on the simulation clock, in seconds since the start of the run.
///
/// `SimTime` is totally ordered; constructing a NaN time panics, which keeps
/// the event queue's ordering invariant sound.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct SimTime(f64);

/// A span of simulated time, in seconds. Always finite; may be zero.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct SimDuration(f64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0.0);
    /// A time later than any reachable event; useful as a horizon sentinel.
    pub const MAX: SimTime = SimTime(f64::MAX);

    /// Builds a time from seconds. Panics on NaN (negative times are allowed
    /// so that warm-up offsets can be expressed, but are unusual).
    pub fn from_secs(secs: f64) -> Self {
        assert!(!secs.is_nan(), "SimTime must not be NaN");
        SimTime(secs)
    }

    /// Seconds since the epoch.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Time elapsed since `earlier`. Panics in debug builds if `earlier`
    /// is in the future.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(
            self.0 >= earlier.0,
            "since() called with a later time: {} < {}",
            self.0,
            earlier.0
        );
        SimDuration(self.0 - earlier.0)
    }

    /// The later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two times.
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0.0);

    /// Builds a duration from seconds. Panics on NaN or negative input.
    pub fn from_secs(secs: f64) -> Self {
        assert!(secs >= 0.0, "SimDuration must be non-negative, got {secs}");
        SimDuration(secs)
    }

    /// Builds a duration from hours.
    pub fn from_hours(hours: f64) -> Self {
        Self::from_secs(hours * 3600.0)
    }

    /// Builds a duration from days.
    pub fn from_days(days: f64) -> Self {
        Self::from_secs(days * 86_400.0)
    }

    /// Builds a duration from years (365 days).
    pub fn from_years(years: f64) -> Self {
        Self::from_secs(years * 365.0 * 86_400.0)
    }

    /// Length in seconds.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Length in hours.
    pub fn as_hours(self) -> f64 {
        self.0 / 3600.0
    }

    /// Length in days.
    pub fn as_days(self) -> f64 {
        self.0 / 86_400.0
    }

    /// True if the duration is exactly zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl Eq for SimTime {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Sound because NaN is rejected at construction.
        self.0.partial_cmp(&other.0).expect("SimTime is never NaN")
    }
}

impl Eq for SimDuration {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for SimDuration {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("SimDuration is never NaN")
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration::from_secs(self.0 - rhs.0)
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs(self.0 * rhs)
    }
}

impl Div<f64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs(self.0 / rhs)
    }
}

impl Div for SimDuration {
    type Output = f64;
    fn div(self, rhs: SimDuration) -> f64 {
        self.0 / rhs.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 86_400.0 {
            write!(f, "{:.3}d", self.as_days())
        } else if self.0 >= 3600.0 {
            write!(f, "{:.3}h", self.as_hours())
        } else {
            write!(f, "{:.6}s", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_ordering_is_total() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(b.since(a), SimDuration::from_secs(1.0));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_time_rejected() {
        let _ = SimTime::from_secs(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_duration_rejected() {
        let _ = SimDuration::from_secs(-1.0);
    }

    #[test]
    fn duration_conversions() {
        assert_eq!(SimDuration::from_hours(1.0).as_secs(), 3600.0);
        assert_eq!(SimDuration::from_days(2.0).as_hours(), 48.0);
        assert_eq!(SimDuration::from_years(1.0).as_days(), 365.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_secs(5.0);
        assert_eq!(t.as_secs(), 5.0);
        let d = SimDuration::from_secs(10.0) * 0.5;
        assert_eq!(d.as_secs(), 5.0);
        assert_eq!(
            SimDuration::from_secs(10.0) / SimDuration::from_secs(4.0),
            2.5
        );
        let mut t2 = SimTime::ZERO;
        t2 += SimDuration::from_secs(3.0);
        assert_eq!(t2.as_secs(), 3.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_secs(10.0)), "10.000000s");
        assert_eq!(format!("{}", SimDuration::from_hours(2.0)), "2.000h");
        assert_eq!(format!("{}", SimDuration::from_days(3.0)), "3.000d");
    }
}
