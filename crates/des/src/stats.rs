//! Output statistics for simulation runs.
//!
//! * [`Counter`] — monotone event counts.
//! * [`Tally`] — streaming mean/variance/min/max over observations (Welford).
//! * [`TimeWeighted`] — time-averaged level of a piecewise-constant signal
//!   (queue lengths, number of up replicas, ...).
//! * [`Histogram`] — log-bucketed histogram with quantile queries, for
//!   latency percentiles (p50/p95/p99) with bounded relative error.
//! * [`BatchMeans`] — confidence intervals for steady-state means from a
//!   single run, via non-overlapping batch means.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// A monotone event counter.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Counter {
    n: u64,
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.n += 1;
    }

    /// Adds `k`.
    pub fn add(&mut self, k: u64) {
        self.n += k;
    }

    /// Current count.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: &Counter) {
        self.n += other.n;
    }
}

/// Streaming mean/variance over individual observations, using Welford's
/// numerically stable update.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Tally {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Tally {
    /// An empty tally.
    pub fn new() -> Self {
        Tally {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        debug_assert!(!x.is_nan(), "NaN observation");
        self.n += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another tally into this one (parallel Welford combine).
    pub fn merge(&mut self, other: &Tally) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Time-weighted average of a piecewise-constant level, e.g. queue length.
///
/// Call [`TimeWeighted::set`] whenever the level changes; the integral of the
/// level over time divided by elapsed time is the time average.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeWeighted {
    level: f64,
    last_change: SimTime,
    start: SimTime,
    integral: f64,
    max_level: f64,
    /// Integrated level and elapsed span folded in from merged gauges
    /// (other runs' windows); see [`TimeWeighted::merge`].
    merged_integral: f64,
    merged_span: f64,
}

impl TimeWeighted {
    /// Starts tracking at `start` with initial `level`.
    pub fn new(start: SimTime, level: f64) -> Self {
        TimeWeighted {
            level,
            last_change: start,
            start,
            integral: 0.0,
            max_level: level,
            merged_integral: 0.0,
            merged_span: 0.0,
        }
    }

    /// Updates the level at time `now`.
    pub fn set(&mut self, now: SimTime, level: f64) {
        self.integral += self.level * now.since(self.last_change).as_secs();
        self.level = level;
        self.last_change = now;
        if level > self.max_level {
            self.max_level = level;
        }
    }

    /// Adds `delta` to the current level at time `now`.
    pub fn add(&mut self, now: SimTime, delta: f64) {
        let next = self.level + delta;
        self.set(now, next);
    }

    /// Current level.
    pub fn level(&self) -> f64 {
        self.level
    }

    /// Maximum level seen.
    pub fn max_level(&self) -> f64 {
        self.max_level
    }

    /// Time average of the level over `[start, now]`, plus any merged-in
    /// windows.
    pub fn average(&self, now: SimTime) -> f64 {
        let total = now.since(self.start).as_secs() + self.merged_span;
        if total == 0.0 {
            return self.level;
        }
        let integral = self.integral
            + self.merged_integral
            + self.level * now.since(self.last_change).as_secs();
        integral / total
    }

    /// Folds another gauge's fully-observed window `[other.start,
    /// other_end]` into this one, so [`TimeWeighted::average`] becomes the
    /// span-weighted average over both windows. The current level and
    /// `start` of `self` are untouched; only the integral, span, and max
    /// are combined. Used by the run farm to aggregate gauges across
    /// independent runs.
    pub fn merge(&mut self, other: &TimeWeighted, other_end: SimTime) {
        self.merged_integral += other.integral
            + other.merged_integral
            + other.level * other_end.since(other.last_change).as_secs();
        self.merged_span += other_end.since(other.start).as_secs() + other.merged_span;
        if other.max_level > self.max_level {
            self.max_level = other.max_level;
        }
    }
}

/// Log-bucketed histogram over non-negative values with quantile queries.
///
/// Buckets grow geometrically from `min_value`, giving a bounded relative
/// error per bucket (default ~5%). Values below `min_value` land in bucket 0,
/// values above the top bucket are clamped into the last.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    min_value: f64,
    growth: f64,
    log_growth: f64,
    counts: Vec<u64>,
    total: u64,
    tally: Tally,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A histogram suitable for latencies from ~1 µs up to ~10⁶ s with 5%
    /// relative bucket width.
    pub fn new() -> Self {
        Self::with_params(1e-6, 1.05, 600)
    }

    /// A histogram with explicit smallest bucket bound, geometric growth
    /// factor and bucket count.
    pub fn with_params(min_value: f64, growth: f64, buckets: usize) -> Self {
        assert!(min_value > 0.0 && growth > 1.0 && buckets > 1);
        Histogram {
            min_value,
            growth,
            log_growth: growth.ln(),
            counts: vec![0; buckets],
            total: 0,
            tally: Tally::new(),
        }
    }

    fn bucket_of(&self, x: f64) -> usize {
        if x < self.min_value {
            return 0;
        }
        let idx = ((x / self.min_value).ln() / self.log_growth) as usize + 1;
        idx.min(self.counts.len() - 1)
    }

    /// Upper bound of bucket `i` (representative value reported by quantiles).
    fn bucket_upper(&self, i: usize) -> f64 {
        if i == 0 {
            self.min_value
        } else {
            self.min_value * self.growth.powi(i as i32)
        }
    }

    /// Records one non-negative observation.
    pub fn record(&mut self, x: f64) {
        debug_assert!(x >= 0.0 && !x.is_nan(), "bad histogram value {x}");
        let b = self.bucket_of(x);
        self.counts[b] += 1;
        self.total += 1;
        self.tally.record(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact mean of recorded values (from the side tally, not the buckets).
    pub fn mean(&self) -> f64 {
        self.tally.mean()
    }

    /// Exact max of recorded values.
    pub fn max(&self) -> f64 {
        self.tally.max()
    }

    /// The `q`-quantile, accurate to one bucket width.
    ///
    /// Edge contract (shared with `wt_obs::QuantileSketch::quantile`):
    /// `q` outside `[0, 1]` clamps to the nearest bound (a NaN `q` is a
    /// caller bug, rejected in debug builds), and an empty histogram
    /// reports 0 for every quantile.
    pub fn quantile(&self, q: f64) -> f64 {
        debug_assert!(!q.is_nan(), "NaN quantile");
        if self.total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return self.bucket_upper(i);
            }
        }
        self.bucket_upper(self.counts.len() - 1)
    }

    /// Convenience: median.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// Convenience: 95th percentile.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// Convenience: 99th percentile.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Merges another histogram with identical parameters.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.min_value == other.min_value
                && self.growth == other.growth
                && self.counts.len() == other.counts.len(),
            "histogram parameter mismatch"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.tally.merge(&other.tally);
    }
}

/// Batch-means confidence interval for a steady-state mean from one run.
///
/// Observations are grouped into fixed-size batches; the batch means are
/// (approximately) independent, so a Student-t interval over them estimates
/// the uncertainty of the grand mean.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchMeans {
    batch_size: u64,
    current: Tally,
    batches: Vec<f64>,
}

impl BatchMeans {
    /// Batches of `batch_size` observations each.
    pub fn new(batch_size: u64) -> Self {
        assert!(batch_size > 0);
        BatchMeans {
            batch_size,
            current: Tally::new(),
            batches: Vec::new(),
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.current.record(x);
        if self.current.count() == self.batch_size {
            self.batches.push(self.current.mean());
            self.current = Tally::new();
        }
    }

    /// Number of completed batches.
    pub fn batches(&self) -> usize {
        self.batches.len()
    }

    /// Grand mean over completed batches (0 when none).
    pub fn mean(&self) -> f64 {
        if self.batches.is_empty() {
            return 0.0;
        }
        self.batches.iter().sum::<f64>() / self.batches.len() as f64
    }

    /// Half-width of an approximate 95% confidence interval over batch
    /// means. Returns `None` with fewer than 2 completed batches.
    pub fn half_width_95(&self) -> Option<f64> {
        let k = self.batches.len();
        if k < 2 {
            return None;
        }
        let mean = self.mean();
        let var = self
            .batches
            .iter()
            .map(|b| (b - mean) * (b - mean))
            .sum::<f64>()
            / (k - 1) as f64;
        Some(t_quantile_975(k - 1) * (var / k as f64).sqrt())
    }

    /// Merges another accumulator with the same batch size: completed
    /// batches are appended, and the two in-progress tallies are combined
    /// (flushed as one batch once they jointly reach `batch_size` — batch
    /// means tolerates the occasional oversized batch). Merge in a fixed
    /// order (e.g. run index) for reproducible confidence intervals.
    pub fn merge(&mut self, other: &BatchMeans) {
        assert_eq!(
            self.batch_size, other.batch_size,
            "batch size mismatch in BatchMeans::merge"
        );
        self.batches.extend_from_slice(&other.batches);
        self.current.merge(&other.current);
        if self.current.count() >= self.batch_size {
            self.batches.push(self.current.mean());
            self.current = Tally::new();
        }
    }
}

/// 97.5% quantile of Student's t with `df` degrees of freedom (two-sided 95%
/// interval). Table for small df, normal approximation beyond.
fn t_quantile_975(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    if df == 0 {
        f64::INFINITY
    } else if df <= 30 {
        TABLE[df - 1]
    } else {
        1.96
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.count(), 5);
    }

    #[test]
    fn tally_mean_variance() {
        let mut t = Tally::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            t.record(x);
        }
        assert!((t.mean() - 5.0).abs() < 1e-12);
        assert!((t.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(t.min(), 2.0);
        assert_eq!(t.max(), 9.0);
        assert_eq!(t.count(), 8);
        assert_eq!(t.sum(), 40.0);
    }

    #[test]
    fn tally_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 20.0).collect();
        let mut whole = Tally::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = Tally::new();
        let mut b = Tally::new();
        for &x in &xs[..37] {
            a.record(x);
        }
        for &x in &xs[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.count(), whole.count());
    }

    #[test]
    fn tally_merge_with_empty() {
        let mut a = Tally::new();
        a.record(3.0);
        let b = Tally::new();
        a.merge(&b);
        assert_eq!(a.count(), 1);
        let mut c = Tally::new();
        c.merge(&a);
        assert_eq!(c.mean(), 3.0);
    }

    #[test]
    fn time_weighted_average() {
        let t = |s| SimTime::from_secs(s);
        let mut w = TimeWeighted::new(t(0.0), 0.0);
        w.set(t(10.0), 2.0); // level 0 for 10s
        w.set(t(20.0), 4.0); // level 2 for 10s
                             // level 4 for 10s
        let avg = w.average(t(30.0));
        assert!((avg - (0.0 * 10.0 + 2.0 * 10.0 + 4.0 * 10.0) / 30.0).abs() < 1e-12);
        assert_eq!(w.max_level(), 4.0);
        assert_eq!(w.level(), 4.0);
    }

    #[test]
    fn time_weighted_add() {
        let t = |s| SimTime::from_secs(s);
        let mut w = TimeWeighted::new(t(0.0), 1.0);
        w.add(t(5.0), 1.0);
        w.add(t(10.0), -2.0);
        assert_eq!(w.level(), 0.0);
        assert!((w.average(t(10.0)) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_quantiles_bounded_error() {
        let mut h = Histogram::new();
        for i in 1..=10_000 {
            h.record(i as f64 / 1000.0); // 0.001 .. 10.0
        }
        let p50 = h.p50();
        assert!((p50 - 5.0).abs() / 5.0 < 0.06, "p50 = {p50}");
        let p95 = h.p95();
        assert!((p95 - 9.5).abs() / 9.5 < 0.06, "p95 = {p95}");
        let p99 = h.p99();
        assert!((p99 - 9.9).abs() / 9.9 < 0.06, "p99 = {p99}");
        assert_eq!(h.count(), 10_000);
        assert!((h.mean() - 5.0005).abs() < 1e-9);
    }

    #[test]
    fn histogram_empty_and_extremes() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0.0);
        h.record(0.0); // below min bucket
        h.record(1e12); // above max bucket — clamped
        assert_eq!(h.count(), 2);
        assert!(h.quantile(0.0) > 0.0);
    }

    #[test]
    fn histogram_quantile_clamps_out_of_range_q() {
        // Empty: every q — in range or not — reports 0.
        let empty = Histogram::new();
        for q in [-1.0, 0.0, 0.5, 1.0, 2.0] {
            assert_eq!(empty.quantile(q), 0.0);
        }
        let mut h = Histogram::new();
        for i in 1..=100 {
            h.record(i as f64);
        }
        // Out-of-range q clamps to the nearest bound instead of panicking.
        assert_eq!(h.quantile(-0.5), h.quantile(0.0));
        assert_eq!(h.quantile(1.5), h.quantile(1.0));
        assert_eq!(h.quantile(f64::NEG_INFINITY), h.quantile(0.0));
        assert_eq!(h.quantile(f64::INFINITY), h.quantile(1.0));
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for i in 0..500 {
            a.record(i as f64 + 1.0);
            b.record(i as f64 + 501.0);
        }
        let mut whole = Histogram::new();
        for i in 0..1000 {
            whole.record(i as f64 + 1.0);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.p50(), whole.p50());
    }

    #[test]
    fn batch_means_interval_covers_truth() {
        // Deterministic pseudo-noise around mean 10.
        let mut bm = BatchMeans::new(50);
        let mut x = 0.5f64;
        for _ in 0..5000 {
            x = (x * 997.0 + 0.123).fract();
            bm.record(10.0 + (x - 0.5));
        }
        assert_eq!(bm.batches(), 100);
        let hw = bm.half_width_95().unwrap();
        assert!((bm.mean() - 10.0).abs() < 3.0 * hw + 0.05);
        assert!(hw < 0.1, "half width too wide: {hw}");
    }

    #[test]
    fn batch_means_needs_two_batches() {
        let mut bm = BatchMeans::new(10);
        for i in 0..15 {
            bm.record(i as f64);
        }
        assert_eq!(bm.batches(), 1);
        assert!(bm.half_width_95().is_none());
    }

    #[test]
    fn counter_merge_adds() {
        let mut a = Counter::new();
        a.add(3);
        let mut b = Counter::new();
        b.add(4);
        a.merge(&b);
        assert_eq!(a.count(), 7);
    }

    #[test]
    fn time_weighted_merge_is_span_weighted() {
        let t = |s| SimTime::from_secs(s);
        // Gauge A: level 2 over [0, 10] → integral 20.
        let mut a = TimeWeighted::new(t(0.0), 2.0);
        // Gauge B: level 6 over [0, 30] → integral 180.
        let b = TimeWeighted::new(t(0.0), 6.0);
        a.merge(&b, t(30.0));
        // Combined: (20 + 180) / (10 + 30) = 5.0.
        assert!((a.average(t(10.0)) - 5.0).abs() < 1e-12);
        assert_eq!(a.max_level(), 6.0);
        // A's own window keeps evolving after the merge.
        a.merge(&TimeWeighted::new(t(0.0), 0.0), t(0.0)); // empty window no-op
        assert!((a.average(t(10.0)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn batch_means_merge_matches_batches() {
        let mut whole = BatchMeans::new(10);
        let mut a = BatchMeans::new(10);
        let mut b = BatchMeans::new(10);
        for i in 0..100 {
            let x = (i as f64).cos();
            whole.record(x);
            if i < 40 {
                a.record(x);
            } else {
                b.record(x);
            }
        }
        a.merge(&b);
        assert_eq!(a.batches(), whole.batches());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        // In-progress remainders combine and flush once they fill a batch.
        let mut c = BatchMeans::new(10);
        let mut d = BatchMeans::new(10);
        for i in 0..6 {
            c.record(i as f64);
            d.record(i as f64 + 6.0);
        }
        c.merge(&d);
        assert_eq!(c.batches(), 1);
    }

    #[test]
    #[should_panic(expected = "batch size mismatch")]
    fn batch_means_merge_rejects_mismatched_sizes() {
        let mut a = BatchMeans::new(10);
        a.merge(&BatchMeans::new(20));
    }

    #[test]
    fn t_table_monotone() {
        assert!(t_quantile_975(1) > t_quantile_975(5));
        assert!(t_quantile_975(5) > t_quantile_975(30));
        assert_eq!(t_quantile_975(100), 1.96);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn tally_matches_naive(xs in proptest::collection::vec(-1e6f64..1e6, 2..200)) {
            let mut t = Tally::new();
            for &x in &xs { t.record(x); }
            let n = xs.len() as f64;
            let mean = xs.iter().sum::<f64>() / n;
            let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
            prop_assert!((t.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
            prop_assert!((t.variance() - var).abs() < 1e-4 * (1.0 + var.abs()));
        }

        #[test]
        fn histogram_quantile_monotone(xs in proptest::collection::vec(0.0f64..1e4, 1..300)) {
            let mut h = Histogram::new();
            for &x in &xs { h.record(x); }
            let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
            for w in qs.windows(2) {
                prop_assert!(h.quantile(w[0]) <= h.quantile(w[1]));
            }
        }

        #[test]
        fn histogram_quantile_within_range(xs in proptest::collection::vec(1e-3f64..1e4, 1..300)) {
            let mut h = Histogram::new();
            for &x in &xs { h.record(x); }
            let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().cloned().fold(0.0, f64::max);
            // Quantiles report bucket upper bounds: allow one bucket of slack.
            prop_assert!(h.quantile(0.5) >= lo * 0.9);
            prop_assert!(h.quantile(0.5) <= hi * 1.1);
        }
    }
}
