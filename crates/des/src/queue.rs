//! The pending-event set.
//!
//! A binary heap keyed on `(time, sequence)`. The sequence number makes the
//! ordering of simultaneous events deterministic (FIFO in scheduling order),
//! which is what makes whole simulations reproducible.

use crate::pending::PendingEvents;
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled entry: fire `event` at `time`.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Future-event list with deterministic tie-breaking.
///
/// Events scheduled for the same instant pop in the order they were pushed.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// An empty queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at `time`. Returns a monotonically
    /// increasing sequence number that identifies the entry.
    pub fn push(&mut self, time: SimTime, event: E) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
        seq
    }

    /// Removes and returns the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// The firing time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Pre-allocates room for at least `additional` more events, so a
    /// steady-state pending set never regrows the heap mid-run.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }
}

impl<E> PendingEvents<E> for EventQueue<E> {
    fn push(&mut self, time: SimTime, event: E) -> u64 {
        EventQueue::push(self, time, event)
    }
    fn pop(&mut self) -> Option<(SimTime, E)> {
        EventQueue::pop(self)
    }
    fn peek_time(&mut self) -> Option<SimTime> {
        EventQueue::peek_time(self)
    }
    fn len(&self) -> usize {
        EventQueue::len(self)
    }
    fn is_empty(&self) -> bool {
        EventQueue::is_empty(self)
    }
    fn reserve(&mut self, additional: usize) {
        EventQueue::reserve(self, additional);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(3.0), "c");
        q.push(t(1.0), "a");
        q.push(t(2.0), "b");
        assert_eq!(q.pop(), Some((t(1.0), "a")));
        assert_eq!(q.pop(), Some((t(2.0), "b")));
        assert_eq!(q.pop(), Some((t(3.0), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(5.0), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5.0), i)));
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(t(7.0), ());
        assert_eq!(q.peek_time(), Some(t(7.0)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(t(10.0), 10);
        q.push(t(1.0), 1);
        assert_eq!(q.pop(), Some((t(1.0), 1)));
        q.push(t(5.0), 5);
        q.push(t(2.0), 2);
        assert_eq!(q.pop(), Some((t(2.0), 2)));
        assert_eq!(q.pop(), Some((t(5.0), 5)));
        assert_eq!(q.pop(), Some((t(10.0), 10)));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Popping the whole queue yields times in non-decreasing order, and
        /// equal times in insertion order.
        #[test]
        fn pop_order_is_sorted_and_stable(times in proptest::collection::vec(0u32..50, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &ti) in times.iter().enumerate() {
                q.push(SimTime::from_secs(ti as f64), i);
            }
            let mut last_time = SimTime::ZERO;
            let mut last_seq_at_time: Option<usize> = None;
            while let Some((time, idx)) = q.pop() {
                prop_assert!(time >= last_time);
                if time == last_time {
                    if let Some(prev) = last_seq_at_time {
                        prop_assert!(idx > prev, "FIFO violated at equal times");
                    }
                }
                last_time = time;
                last_seq_at_time = Some(idx);
            }
        }

        /// len() tracks pushes and pops exactly.
        #[test]
        fn len_is_consistent(ops in proptest::collection::vec(any::<bool>(), 0..100)) {
            let mut q = EventQueue::new();
            let mut expected = 0usize;
            for (i, push) in ops.into_iter().enumerate() {
                if push {
                    q.push(SimTime::from_secs(i as f64), i);
                    expected += 1;
                } else if q.pop().is_some() {
                    expected -= 1;
                }
                prop_assert_eq!(q.len(), expected);
            }
        }
    }
}
