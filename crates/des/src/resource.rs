//! A multi-server FIFO resource, the workhorse of queueing models.
//!
//! [`ServerPool`] does the bookkeeping every queueing station needs — busy
//! servers, waiting jobs, waiting-time and queue-length statistics — while
//! leaving event scheduling to the caller: when `arrive` or `depart` hands a
//! job back, the caller draws a service time and schedules the completion
//! event. This keeps the pool reusable across every model event alphabet.

use crate::stats::{Tally, TimeWeighted};
use crate::time::SimTime;
use std::collections::VecDeque;

/// A `c`-server FIFO queueing resource holding jobs of type `T`.
#[derive(Debug)]
pub struct ServerPool<T> {
    servers: usize,
    busy: usize,
    queue: VecDeque<(SimTime, T)>,
    queue_len: TimeWeighted,
    busy_level: TimeWeighted,
    waits: Tally,
    arrivals: u64,
    completions: u64,
}

impl<T> ServerPool<T> {
    /// A pool of `servers` identical servers, observed from `start`.
    pub fn new(servers: usize, start: SimTime) -> Self {
        assert!(servers > 0, "a pool needs at least one server");
        ServerPool {
            servers,
            busy: 0,
            queue: VecDeque::new(),
            queue_len: TimeWeighted::new(start, 0.0),
            busy_level: TimeWeighted::new(start, 0.0),
            waits: Tally::new(),
            arrivals: 0,
            completions: 0,
        }
    }

    /// A job arrives at `now`. If a server is free the job starts service
    /// immediately and is returned (wait = 0); otherwise it queues and `None`
    /// is returned.
    #[must_use = "a returned job must have its completion scheduled"]
    pub fn arrive(&mut self, now: SimTime, job: T) -> Option<T> {
        self.arrivals += 1;
        if self.busy < self.servers {
            self.busy += 1;
            self.busy_level.set(now, self.busy as f64);
            self.waits.record(0.0);
            Some(job)
        } else {
            self.queue.push_back((now, job));
            self.queue_len.set(now, self.queue.len() as f64);
            None
        }
    }

    /// A job finishes service at `now`, freeing its server. If a job was
    /// waiting, it starts service and is returned (its wait is recorded);
    /// otherwise the server idles and `None` is returned.
    #[must_use = "a returned job must have its completion scheduled"]
    pub fn depart(&mut self, now: SimTime) -> Option<T> {
        assert!(self.busy > 0, "depart with no busy server");
        self.completions += 1;
        if let Some((enq, job)) = self.queue.pop_front() {
            self.queue_len.set(now, self.queue.len() as f64);
            self.waits.record(now.since(enq).as_secs());
            // Server stays busy with the next job.
            Some(job)
        } else {
            self.busy -= 1;
            self.busy_level.set(now, self.busy as f64);
            None
        }
    }

    /// Servers currently serving jobs.
    pub fn busy(&self) -> usize {
        self.busy
    }

    /// Jobs currently waiting.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Total configured servers.
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// Total arrivals seen.
    pub fn arrivals(&self) -> u64 {
        self.arrivals
    }

    /// Total completions seen.
    pub fn completions(&self) -> u64 {
        self.completions
    }

    /// Waiting-time statistics (time in queue, excluding service).
    pub fn waits(&self) -> &Tally {
        &self.waits
    }

    /// Time-averaged queue length over `[start, now]`.
    pub fn avg_queue_len(&self, now: SimTime) -> f64 {
        self.queue_len.average(now)
    }

    /// Time-averaged number of busy servers (utilization × servers).
    pub fn avg_busy(&self, now: SimTime) -> f64 {
        self.busy_level.average(now)
    }

    /// Time-averaged utilization in `[0, 1]`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        self.avg_busy(now) / self.servers as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn single_server_fifo() {
        let mut p: ServerPool<u32> = ServerPool::new(1, t(0.0));
        // Job 1 starts immediately.
        assert_eq!(p.arrive(t(0.0), 1), Some(1));
        // Jobs 2 and 3 queue.
        assert_eq!(p.arrive(t(1.0), 2), None);
        assert_eq!(p.arrive(t(2.0), 3), None);
        assert_eq!(p.queue_len(), 2);
        // Job 1 departs at t=5; job 2 starts having waited 4s.
        assert_eq!(p.depart(t(5.0)), Some(2));
        // Job 2 departs at t=7; job 3 waited 5s.
        assert_eq!(p.depart(t(7.0)), Some(3));
        assert_eq!(p.depart(t(8.0)), None);
        assert_eq!(p.busy(), 0);
        // Waits: 0 (job1), 4 (job2), 5 (job3).
        assert!((p.waits().mean() - 3.0).abs() < 1e-12);
        assert_eq!(p.completions(), 3);
        assert_eq!(p.arrivals(), 3);
    }

    #[test]
    fn multi_server_no_queue_until_full() {
        let mut p: ServerPool<&str> = ServerPool::new(3, t(0.0));
        assert!(p.arrive(t(0.0), "a").is_some());
        assert!(p.arrive(t(0.0), "b").is_some());
        assert!(p.arrive(t(0.0), "c").is_some());
        assert!(p.arrive(t(0.0), "d").is_none());
        assert_eq!(p.busy(), 3);
        assert_eq!(p.queue_len(), 1);
    }

    #[test]
    fn utilization_accounting() {
        let mut p: ServerPool<()> = ServerPool::new(2, t(0.0));
        let _ = p.arrive(t(0.0), ());
        let _ = p.depart(t(10.0));
        // One of two servers busy for 10s out of 20s observed: util 0.25.
        assert!((p.utilization(t(20.0)) - 0.25).abs() < 1e-12);
        assert!((p.avg_busy(t(20.0)) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no busy server")]
    fn depart_on_idle_pool_panics() {
        let mut p: ServerPool<()> = ServerPool::new(1, t(0.0));
        let _ = p.depart(t(1.0));
    }

    #[test]
    fn avg_queue_len() {
        let mut p: ServerPool<u8> = ServerPool::new(1, t(0.0));
        let _ = p.arrive(t(0.0), 0);
        let _ = p.arrive(t(0.0), 1); // queued at t=0
        let _ = p.depart(t(10.0)); // queue empties at t=10
        let _ = p.depart(t(20.0));
        // Queue length 1 for 10s over 20s = 0.5.
        assert!((p.avg_queue_len(t(20.0)) - 0.5).abs() < 1e-12);
    }
}
