//! A calendar queue (Brown 1988): the classic O(1)-amortized alternative
//! to the binary-heap future-event list, kept here for the DESIGN.md §8
//! ablation. Same contract as [`crate::EventQueue`]: earliest time first,
//! FIFO among equal timestamps.
//!
//! Design: a ring of `n_buckets` "days" of width `bucket_width`; an event
//! at time `t` lands in bucket `(t / width) mod n`. `pop` scans from the
//! current day forward, only accepting events belonging to the current
//! "year" (so an event one full ring ahead stays put). The queue resizes
//! (doubling/halving the day count, re-estimating the width from the
//! inter-event spacing near the head) when the load factor leaves
//! `[0.5, 2]`.

use crate::time::SimTime;

/// A calendar-queue future-event list.
pub struct CalendarQueue<E> {
    /// Each bucket is kept sorted ascending by (time, seq); pops drain
    /// from the front via index (swap-free removal at position 0 is O(k),
    /// but k is ~1 at a healthy load factor).
    buckets: Vec<Vec<(SimTime, u64, E)>>,
    bucket_width: f64,
    size: usize,
    next_seq: u64,
    /// The cursor's current "day" as an integer index (`(t / width) as
    /// u64`) — integer so that the accept test uses *exactly* the same
    /// quantization as bucket assignment. A float lower-edge comparison
    /// here can round onto an event's timestamp and starve it forever.
    cursor_day: u64,
    cursor: usize,
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> CalendarQueue<E> {
    /// An empty queue with an initial guess of 2 buckets × 1 s.
    pub fn new() -> Self {
        CalendarQueue {
            buckets: (0..2).map(|_| Vec::new()).collect(),
            bucket_width: 1.0,
            size: 0,
            next_seq: 0,
            cursor_day: 0,
            cursor: 0,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.size
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    fn day_of(&self, t: f64) -> u64 {
        (t / self.bucket_width) as u64
    }

    fn bucket_of(&self, t: f64) -> usize {
        (self.day_of(t) % self.buckets.len() as u64) as usize
    }

    /// Schedules `event` at `time`; returns its sequence number.
    pub fn push(&mut self, time: SimTime, event: E) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let idx = self.bucket_of(time.as_secs());
        let bucket = &mut self.buckets[idx];
        // Insert keeping the bucket sorted by (time, seq).
        let pos = bucket.partition_point(|(t, s, _)| (*t, *s) <= (time, seq));
        bucket.insert(pos, (time, seq, event));
        self.size += 1;
        // An event scheduled before the cursor's current day would be
        // skipped until the ring wrapped: rewind the cursor onto it.
        let day = self.day_of(time.as_secs());
        if day < self.cursor_day {
            self.cursor = idx;
            self.cursor_day = day;
        }
        if self.size > 2 * self.buckets.len() {
            self.resize(self.buckets.len() * 2);
        }
        seq
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.size == 0 {
            return None;
        }
        // Scan at most one full ring looking for an event inside the
        // cursor's current "day"; if a whole lap finds nothing, fall back
        // to a direct minimum search (events are sparse / far ahead).
        let n = self.buckets.len();
        for _ in 0..n {
            let head_day = self.buckets[self.cursor]
                .first()
                .map(|&(t, _, _)| self.day_of(t.as_secs()));
            if head_day.is_some_and(|d| d <= self.cursor_day) {
                let (t, _, e) = self.buckets[self.cursor].remove(0);
                self.size -= 1;
                if self.size < self.buckets.len() / 2 && self.buckets.len() > 2 {
                    self.resize(self.buckets.len() / 2);
                }
                return Some((t, e));
            }
            self.cursor = (self.cursor + 1) % n;
            self.cursor_day += 1;
        }
        // Direct search fallback.
        let (idx, _) = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| b.first().map(|&(t, s, _)| (i, (t, s))))
            .min_by_key(|&(_, key)| key)?;
        let (t, _, e) = self.buckets[idx].remove(0);
        self.size -= 1;
        // Re-anchor the cursor on the popped event's day.
        self.cursor = self.bucket_of(t.as_secs());
        self.cursor_day = self.day_of(t.as_secs());
        Some((t, e))
    }

    /// The earliest pending event time (O(buckets) worst case).
    pub fn peek_time(&self) -> Option<SimTime> {
        self.buckets
            .iter()
            .filter_map(|b| b.first().map(|&(t, s, _)| (t, s)))
            .min()
            .map(|(t, _)| t)
    }

    /// Rebuilds with `n_buckets`, re-estimating the width from the mean
    /// spacing of up-to-32 earliest events.
    fn resize(&mut self, n_buckets: usize) {
        let mut all: Vec<(SimTime, u64, E)> = Vec::with_capacity(self.size);
        for b in &mut self.buckets {
            all.append(b);
        }
        all.sort_by_key(|a| (a.0, a.1));
        // Width estimate: average gap among the first events, floored.
        let sample = all.len().min(32);
        let width = if sample >= 2 {
            let span = all[sample - 1].0.as_secs() - all[0].0.as_secs();
            (span / (sample - 1) as f64 * 3.0).max(1e-9)
        } else {
            self.bucket_width
        };
        self.bucket_width = width;
        self.buckets = (0..n_buckets.max(2)).map(|_| Vec::new()).collect();
        // Anchor the cursor at the head event (or reset it when the queue
        // emptied — a stale cursor could index past the new bucket count).
        match all.first() {
            Some(&(t, _, _)) => {
                self.cursor_day = self.day_of(t.as_secs());
                self.cursor = self.bucket_of(t.as_secs());
            }
            None => {
                self.cursor = 0;
                self.cursor_day = 0;
            }
        }
        let n = self.buckets.len() as u64;
        for (t, s, e) in all {
            let idx = ((t.as_secs() / self.bucket_width) as u64 % n) as usize;
            self.buckets[idx].push((t, s, e));
        }
        // Buckets were filled in global sorted order, so each stays sorted.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = CalendarQueue::new();
        q.push(t(3.0), "c");
        q.push(t(1.0), "a");
        q.push(t(2.0), "b");
        assert_eq!(q.pop(), Some((t(1.0), "a")));
        assert_eq!(q.pop(), Some((t(2.0), "b")));
        assert_eq!(q.pop(), Some((t(3.0), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut q = CalendarQueue::new();
        for i in 0..50 {
            q.push(t(7.5), i);
        }
        for i in 0..50 {
            assert_eq!(q.pop(), Some((t(7.5), i)));
        }
    }

    #[test]
    fn survives_resize_cycles() {
        let mut q = CalendarQueue::new();
        for i in 0..1_000u64 {
            q.push(t((i * 37 % 501) as f64), i);
        }
        assert_eq!(q.len(), 1_000);
        let mut last = t(0.0);
        let mut n = 0;
        while let Some((time, _)) = q.pop() {
            assert!(time >= last, "order violated at item {n}");
            last = time;
            n += 1;
        }
        assert_eq!(n, 1_000);
    }

    #[test]
    fn sparse_far_future_events() {
        let mut q = CalendarQueue::new();
        q.push(t(1e9), "far");
        q.push(t(1.0), "near");
        assert_eq!(q.pop(), Some((t(1.0), "near")));
        assert_eq!(q.pop(), Some((t(1e9), "far")));
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = CalendarQueue::new();
        q.push(t(5.0), 5);
        q.push(t(2.0), 2);
        assert_eq!(q.peek_time(), Some(t(2.0)));
        assert_eq!(q.pop(), Some((t(2.0), 2)));
        assert_eq!(q.peek_time(), Some(t(5.0)));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::queue::EventQueue;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]
        /// The calendar queue agrees exactly with the binary-heap queue on
        /// any interleaving of pushes and pops — including pushes landing
        /// on days *earlier* than the last popped event's day (the cursor
        /// must rewind, not starve them for a lap) and push/pop bursts that
        /// drive the load factor across both resize thresholds.
        #[test]
        fn equivalent_to_heap_queue(
            ops in proptest::collection::vec((0u8..4, 0u32..10_000), 1..400)
        ) {
            let mut cal = CalendarQueue::new();
            let mut heap = EventQueue::new();
            let mut seq = 0usize;
            let mut last_pop = 0.0f64;
            let mut push_both = |cal: &mut CalendarQueue<usize>,
                                 heap: &mut EventQueue<usize>,
                                 secs: f64| {
                let t = SimTime::from_secs(secs);
                cal.push(t, seq);
                heap.push(t, seq);
                seq += 1;
            };
            for (op, val) in ops {
                match op {
                    // Push at an arbitrary time.
                    0 => push_both(&mut cal, &mut heap, f64::from(val) / 10.0),
                    // Push *behind* the last popped time: lands on an
                    // earlier calendar day than the cursor's once the
                    // offset exceeds the bucket width.
                    1 => push_both(
                        &mut cal,
                        &mut heap,
                        (last_pop - f64::from(val) / 10.0).max(0.0),
                    ),
                    // Burst of closely spaced pushes: shoves the load
                    // factor over the doubling threshold mid-sequence.
                    2 => {
                        for j in 0..8 {
                            push_both(
                                &mut cal,
                                &mut heap,
                                f64::from(val) / 10.0 + f64::from(j) * 0.3,
                            );
                        }
                    }
                    // Pop (repeated pops cross the halving threshold).
                    _ => {
                        let (a, b) = (cal.pop(), heap.pop());
                        if let Some((t, _)) = b {
                            last_pop = t.as_secs();
                        }
                        prop_assert_eq!(a, b);
                    }
                }
                prop_assert_eq!(cal.len(), heap.len());
                prop_assert_eq!(cal.peek_time(), heap.peek_time());
            }
            // Drain both; must match exactly (time order + FIFO ties).
            loop {
                let (a, b) = (cal.pop(), heap.pop());
                prop_assert_eq!(a, b);
                if b.is_none() {
                    break;
                }
            }
        }
    }
}
