//! A calendar queue (Brown 1988): the O(1)-amortized future-event list,
//! hardened as a production engine backend (see DESIGN.md §8 for when it
//! beats the heap). Same contract as [`crate::EventQueue`] — ascending
//! `(time, seq)` pops, FIFO among equal timestamps — verified against it
//! by an exhaustive equivalence proptest below and by whole-engine runs
//! in `tests/queue_backends.rs`.
//!
//! Design: a ring of `n_buckets` "days" of width `bucket_width`; an event
//! at time `t` lands in bucket `(t / width) mod n`. `pop` scans from the
//! current day forward, only accepting events belonging to the current
//! "year" (so an event one full ring ahead stays put). The queue resizes
//! (doubling/halving the day count) when the load factor leaves
//! `[0.5, 2]`.
//!
//! Hardening over the original ablation version:
//!
//! * Buckets are stored sorted *descending* by `(time, seq)`, so the next
//!   event to fire is the bucket's tail and `pop` is a true O(1)
//!   `Vec::pop` — the old ascending layout paid an O(k) `remove(0)`
//!   memmove per event. Insertion finds its slot by binary search; new
//!   events usually carry the latest time in their bucket, which under
//!   the descending layout is the front, so pushes pay the memmove
//!   instead — but k ≈ 1–2 at a healthy load factor, and pops outnumber
//!   reorderings in every simulation workload.
//! * The bucket width is re-estimated from the *observed pop gaps* since
//!   the last resize (mean inter-event spacing at the head of the queue,
//!   the quantity the width must match), falling back to a bounded
//!   sample of per-bucket head times when too few pops have happened.
//!   The old version concatenated and globally sorted every pending
//!   event on each resize just to estimate spacing.
//! * Resizes reuse allocations: events drain through a persistent
//!   scratch buffer and retired bucket `Vec`s park in a spare pool for
//!   the next grow, so steady-state resize churn allocates nothing new.

use crate::pending::PendingEvents;
use crate::time::SimTime;

/// A calendar-queue future-event list.
pub struct CalendarQueue<E> {
    /// Each bucket is kept sorted descending by `(time, seq)`: the next
    /// event to fire is `bucket.last()`, popped in O(1) from the tail.
    buckets: Vec<Vec<(SimTime, u64, E)>>,
    bucket_width: f64,
    size: usize,
    next_seq: u64,
    /// The cursor's current "day" as an integer index (`(t / width) as
    /// u64`) — integer so that the accept test uses *exactly* the same
    /// quantization as bucket assignment. A float lower-edge comparison
    /// here can round onto an event's timestamp and starve it forever.
    cursor_day: u64,
    cursor: usize,
    /// Pop-gap statistics since the last resize, feeding the width
    /// estimator: `gap_sum / gap_count` is the mean spacing between
    /// consecutively popped events.
    last_pop_s: f64,
    gap_sum: f64,
    gap_count: u64,
    /// Running min/max event time ever pushed — the bootstrap width
    /// estimate (pending span / pending count) before any pops happened.
    min_seen_s: f64,
    max_seen_s: f64,
    /// Resize staging area, retained across resizes.
    scratch: Vec<(SimTime, u64, E)>,
    /// Retired bucket allocations, reused when the ring next grows.
    spare: Vec<Vec<(SimTime, u64, E)>>,
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> CalendarQueue<E> {
    /// An empty queue with an initial guess of 2 buckets × 1 s.
    pub fn new() -> Self {
        CalendarQueue {
            buckets: (0..2).map(|_| Vec::new()).collect(),
            bucket_width: 1.0,
            size: 0,
            next_seq: 0,
            cursor_day: 0,
            cursor: 0,
            last_pop_s: f64::NAN,
            gap_sum: 0.0,
            gap_count: 0,
            min_seen_s: f64::INFINITY,
            max_seen_s: f64::NEG_INFINITY,
            scratch: Vec::new(),
            spare: Vec::new(),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.size
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    fn day_of(&self, t: f64) -> u64 {
        (t / self.bucket_width) as u64
    }

    fn bucket_of(&self, t: f64) -> usize {
        (self.day_of(t) % self.buckets.len() as u64) as usize
    }

    /// Schedules `event` at `time`; returns its sequence number.
    pub fn push(&mut self, time: SimTime, event: E) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let secs = time.as_secs();
        self.min_seen_s = self.min_seen_s.min(secs);
        self.max_seen_s = self.max_seen_s.max(secs);
        let idx = self.bucket_of(time.as_secs());
        let bucket = &mut self.buckets[idx];
        // Insert keeping the bucket sorted descending by (time, seq):
        // everything before `pos` fires later than the new entry.
        let pos = bucket.partition_point(|(t, s, _)| (*t, *s) > (time, seq));
        bucket.insert(pos, (time, seq, event));
        self.size += 1;
        // An event scheduled before the cursor's current day would be
        // skipped until the ring wrapped: rewind the cursor onto it.
        let day = self.day_of(time.as_secs());
        if day < self.cursor_day {
            self.cursor = idx;
            self.cursor_day = day;
        }
        if self.size > 2 * self.buckets.len() {
            self.resize(self.buckets.len() * 2);
        }
        seq
    }

    /// Advances the cursor to the bucket holding the earliest pending
    /// event and returns its index. Only skips days that hold nothing,
    /// so repeated calls (a peek followed by its pop) are O(1).
    fn advance(&mut self) -> Option<usize> {
        if self.size == 0 {
            return None;
        }
        // Scan at most one full ring looking for an event inside the
        // cursor's current "day"; if a whole lap finds nothing, fall back
        // to a direct minimum search (events are sparse / far ahead).
        let n = self.buckets.len();
        for _ in 0..n {
            let tail_day = self.buckets[self.cursor]
                .last()
                .map(|&(t, _, _)| self.day_of(t.as_secs()));
            if tail_day.is_some_and(|d| d <= self.cursor_day) {
                return Some(self.cursor);
            }
            self.cursor = (self.cursor + 1) % n;
            self.cursor_day += 1;
        }
        // Direct search over bucket tails; re-anchor the cursor on the
        // earliest event's day.
        let (_, (t, _)) = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| b.last().map(|&(t, s, _)| (i, (t, s))))
            .min_by_key(|&(_, key)| key)?;
        self.cursor_day = self.day_of(t.as_secs());
        self.cursor = self.bucket_of(t.as_secs());
        Some(self.cursor)
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let idx = self.advance()?;
        let (t, _, e) = self.buckets[idx].pop().expect("advance found this tail");
        self.size -= 1;
        // Feed the width estimator: mean spacing of popped events. Raw
        // queue use can pop backwards in time (pushes behind the head);
        // clamp those gaps so they cannot drive the estimate negative.
        let secs = t.as_secs();
        if self.last_pop_s.is_finite() {
            self.gap_sum += (secs - self.last_pop_s).max(0.0);
            self.gap_count += 1;
        }
        self.last_pop_s = secs;
        if self.size < self.buckets.len() / 2 && self.buckets.len() > 2 {
            self.resize(self.buckets.len() / 2);
        } else if self.gap_count >= 256.max(self.buckets.len() as u64) {
            // Load-factor thresholds never fire on a steady-state pending
            // set, so a mis-sized width (from a cold-start estimate, or a
            // workload whose time scale drifted) would persist forever.
            // Once enough pop gaps accumulate, check the implied bucket
            // occupancy and re-spread at the same ring size if it left
            // [0.5, 8] days per mean gap. Resizing resets the gap stats,
            // so this self-throttles.
            let mean_gap = self.gap_sum / self.gap_count as f64;
            let per_day = self.bucket_width / mean_gap.max(1e-12);
            if !(0.5..=8.0).contains(&per_day) {
                self.resize(self.buckets.len());
            }
        }
        Some((t, e))
    }

    /// The earliest pending event time. Shares the pop path's amortized
    /// cursor scan (and may advance the cursor past empty days — never
    /// observable through the queue's contents or pop order).
    pub fn peek_time(&mut self) -> Option<SimTime> {
        let idx = self.advance()?;
        self.buckets[idx].last().map(|&(t, _, _)| t)
    }

    /// Pre-allocates scratch room; bucket geometry is workload-driven, so
    /// this only sizes the resize staging area.
    pub fn reserve(&mut self, additional: usize) {
        self.scratch.reserve(additional);
    }

    /// Estimates the bucket width: 3× the mean inter-event spacing at the
    /// queue's head. Prefers observed pop gaps (cheap, and exact for the
    /// region that matters); with too few pops since the last resize —
    /// e.g. during initial seeding, which is pushes only — falls back to
    /// the pending set's time span divided by its size, an O(1) density
    /// estimate. Neither path sorts or even touches bucket contents.
    fn estimate_width(&self) -> f64 {
        if self.gap_count >= 32 {
            return (self.gap_sum / self.gap_count as f64 * 3.0).max(1e-9);
        }
        let anchor = if self.last_pop_s.is_finite() {
            self.last_pop_s
        } else {
            self.min_seen_s
        };
        let span = self.max_seen_s - anchor;
        // NaN (no events seen yet) falls through to the current width too.
        if span.is_nan() || span <= 0.0 || self.size < 2 {
            return self.bucket_width;
        }
        (span / self.size as f64 * 3.0).max(1e-9)
    }

    /// Rebuilds with `n_buckets`, re-estimating the width (see
    /// [`estimate_width`](Self::estimate_width)) and reusing both the
    /// staging buffer and retired bucket allocations.
    fn resize(&mut self, n_buckets: usize) {
        let n_buckets = n_buckets.max(2);
        let width = self.estimate_width();
        // Drain every bucket into the persistent scratch buffer (no sort:
        // redistribution below inserts each event in place).
        self.scratch.clear();
        self.scratch.reserve(self.size);
        let mut old = std::mem::take(&mut self.buckets);
        for b in &mut old {
            self.scratch.append(b);
        }
        self.spare.extend(old);
        let mut buckets = Vec::with_capacity(n_buckets);
        for _ in 0..n_buckets {
            buckets.push(self.spare.pop().unwrap_or_default());
        }
        self.buckets = buckets;
        self.bucket_width = width;
        // Anchor the cursor at the head event (or reset it when the queue
        // emptied — a stale cursor could index past the new bucket count).
        match self.scratch.iter().map(|&(t, s, _)| (t, s)).min() {
            Some((t, _)) => {
                self.cursor_day = self.day_of(t.as_secs());
                self.cursor = self.bucket_of(t.as_secs());
            }
            None => {
                self.cursor = 0;
                self.cursor_day = 0;
            }
        }
        let mut scratch = std::mem::take(&mut self.scratch);
        for (t, s, e) in scratch.drain(..) {
            let idx = self.bucket_of(t.as_secs());
            let bucket = &mut self.buckets[idx];
            let pos = bucket.partition_point(|(bt, bs, _)| (*bt, *bs) > (t, s));
            bucket.insert(pos, (t, s, e));
        }
        self.scratch = scratch;
        self.gap_sum = 0.0;
        self.gap_count = 0;
    }
}

impl<E> PendingEvents<E> for CalendarQueue<E> {
    fn push(&mut self, time: SimTime, event: E) -> u64 {
        CalendarQueue::push(self, time, event)
    }
    fn pop(&mut self) -> Option<(SimTime, E)> {
        CalendarQueue::pop(self)
    }
    fn peek_time(&mut self) -> Option<SimTime> {
        CalendarQueue::peek_time(self)
    }
    fn len(&self) -> usize {
        CalendarQueue::len(self)
    }
    fn is_empty(&self) -> bool {
        CalendarQueue::is_empty(self)
    }
    fn reserve(&mut self, additional: usize) {
        CalendarQueue::reserve(self, additional);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = CalendarQueue::new();
        q.push(t(3.0), "c");
        q.push(t(1.0), "a");
        q.push(t(2.0), "b");
        assert_eq!(q.pop(), Some((t(1.0), "a")));
        assert_eq!(q.pop(), Some((t(2.0), "b")));
        assert_eq!(q.pop(), Some((t(3.0), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut q = CalendarQueue::new();
        for i in 0..50 {
            q.push(t(7.5), i);
        }
        for i in 0..50 {
            assert_eq!(q.pop(), Some((t(7.5), i)));
        }
    }

    #[test]
    fn survives_resize_cycles() {
        let mut q = CalendarQueue::new();
        for i in 0..1_000u64 {
            q.push(t((i * 37 % 501) as f64), i);
        }
        assert_eq!(q.len(), 1_000);
        let mut last = t(0.0);
        let mut n = 0;
        while let Some((time, _)) = q.pop() {
            assert!(time >= last, "order violated at item {n}");
            last = time;
            n += 1;
        }
        assert_eq!(n, 1_000);
    }

    #[test]
    fn sparse_far_future_events() {
        let mut q = CalendarQueue::new();
        q.push(t(1e9), "far");
        q.push(t(1.0), "near");
        assert_eq!(q.pop(), Some((t(1.0), "near")));
        assert_eq!(q.pop(), Some((t(1e9), "far")));
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = CalendarQueue::new();
        q.push(t(5.0), 5);
        q.push(t(2.0), 2);
        assert_eq!(q.peek_time(), Some(t(2.0)));
        assert_eq!(q.pop(), Some((t(2.0), 2)));
        assert_eq!(q.peek_time(), Some(t(5.0)));
    }

    #[test]
    fn peek_never_perturbs_pop_order() {
        // Interleave peeks (which advance the cursor) with pushes that
        // land behind the cursor; order must match a peek-free replay.
        let mut with_peeks = CalendarQueue::new();
        let mut without = CalendarQueue::new();
        let times = [9.0, 1.0, 5.0, 0.5, 5.0, 3.0, 7.5, 0.25];
        for (i, &s) in times.iter().enumerate() {
            with_peeks.push(t(s), i);
            without.push(t(s), i);
            assert!(with_peeks.peek_time().is_some());
        }
        loop {
            let (a, b) = (with_peeks.pop(), without.pop());
            assert_eq!(a, b);
            if b.is_none() {
                break;
            }
        }
    }

    #[test]
    fn steady_state_keeps_bucket_occupancy_low() {
        // A churn-shaped workload: push/pop at matched rates with a
        // stable pending set. After warm-up, the width estimator should
        // keep the ring sized so pops stay near O(1) — asserted via the
        // load factor staying inside the resize band.
        let mut q = CalendarQueue::new();
        let mut x = 12345u64;
        let mut rand01 = move || {
            // splitmix64 step, mapped to (0, 1].
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            (z >> 11) as f64 / (1u64 << 53) as f64 + f64::EPSILON
        };
        for i in 0..4096u64 {
            q.push(t(rand01()), i);
        }
        for _ in 0..100_000 {
            let (popped, _) = q.pop().unwrap();
            q.push(t(popped.as_secs() + rand01()), 0);
        }
        assert_eq!(q.len(), 4096);
        let n = q.buckets.len();
        assert!(
            q.size <= 2 * n && q.size >= n / 2,
            "load factor escaped the resize band: {} events, {n} buckets",
            q.size
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::queue::EventQueue;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]
        /// The calendar queue agrees exactly with the binary-heap queue on
        /// any interleaving of pushes, pops and peeks — including pushes
        /// landing on days *earlier* than the last popped event's day (the
        /// cursor must rewind, not starve them for a lap) and push/pop
        /// bursts that drive the load factor across both resize thresholds.
        #[test]
        fn equivalent_to_heap_queue(
            ops in proptest::collection::vec((0u8..4, 0u32..10_000), 1..400)
        ) {
            let mut cal = CalendarQueue::new();
            let mut heap = EventQueue::new();
            let mut seq = 0usize;
            let mut last_pop = 0.0f64;
            let mut push_both = |cal: &mut CalendarQueue<usize>,
                                 heap: &mut EventQueue<usize>,
                                 secs: f64| {
                let t = SimTime::from_secs(secs);
                cal.push(t, seq);
                heap.push(t, seq);
                seq += 1;
            };
            for (op, val) in ops {
                match op {
                    // Push at an arbitrary time.
                    0 => push_both(&mut cal, &mut heap, f64::from(val) / 10.0),
                    // Push *behind* the last popped time: lands on an
                    // earlier calendar day than the cursor's once the
                    // offset exceeds the bucket width.
                    1 => push_both(
                        &mut cal,
                        &mut heap,
                        (last_pop - f64::from(val) / 10.0).max(0.0),
                    ),
                    // Burst of closely spaced pushes: shoves the load
                    // factor over the doubling threshold mid-sequence.
                    2 => {
                        for j in 0..8 {
                            push_both(
                                &mut cal,
                                &mut heap,
                                f64::from(val) / 10.0 + f64::from(j) * 0.3,
                            );
                        }
                    }
                    // Pop (repeated pops cross the halving threshold).
                    _ => {
                        let (a, b) = (cal.pop(), heap.pop());
                        if let Some((t, _)) = b {
                            last_pop = t.as_secs();
                        }
                        prop_assert_eq!(a, b);
                    }
                }
                prop_assert_eq!(cal.len(), heap.len());
                prop_assert_eq!(cal.peek_time(), heap.peek_time());
            }
            // Drain both; must match exactly (time order + FIFO ties).
            loop {
                let (a, b) = (cal.pop(), heap.pop());
                prop_assert_eq!(a, b);
                if b.is_none() {
                    break;
                }
            }
        }
    }
}
