//! The pending-event-set abstraction: what the engine requires from a
//! future-event list, and the naming of the backends that provide it.
//!
//! # The `(time, seq)` contract
//!
//! Determinism across backends rests on one rule: **events pop in
//! ascending `(time, seq)` order**, where `seq` is the value returned by
//! [`PendingEvents::push`] — a counter that increments by one per push
//! over the queue's lifetime. Equal-time events therefore pop FIFO in
//! scheduling order, and *never* in an order derived from backend
//! internals (heap layout, bucket geometry, resize history). Any two
//! conforming backends fed the same push sequence produce the same pop
//! sequence, which is what makes simulation results — every RNG draw,
//! every statistic, every byte — independent of the backend choice.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// A future-event list, as seen by the simulation engine.
///
/// Implementations must honor the module-level `(time, seq)` contract:
/// [`pop`](Self::pop) returns pending events in ascending `(time, seq)`
/// order, with `seq` assigned by [`push`](Self::push) in arrival order.
/// The trait is object-safe: the engine hands models a
/// `&mut dyn PendingEvents<E>` inside [`Ctx`](crate::Ctx), so scheduling
/// goes through one indirect call while the engine's own pop loop stays
/// monomorphized.
pub trait PendingEvents<E> {
    /// Schedules `event` at `time`. Returns the entry's sequence number:
    /// starts at 0, increments by one per push, never resets (a `u64`
    /// outlives any feasible run — see the long-run smoke test).
    fn push(&mut self, time: SimTime, event: E) -> u64;

    /// Removes and returns the pending event with the smallest
    /// `(time, seq)`, or `None` when empty.
    fn pop(&mut self) -> Option<(SimTime, E)>;

    /// The firing time of the event [`pop`](Self::pop) would return.
    ///
    /// Takes `&mut self` so backends may share the pop path's amortized
    /// cursor advance (the calendar queue does); a peek may reposition
    /// internal cursors but must never change the queue's contents or
    /// the subsequent pop order.
    fn peek_time(&mut self) -> Option<SimTime>;

    /// Number of pending events.
    fn len(&self) -> usize;

    /// True when no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pre-allocates room for at least `additional` more events. A hint:
    /// backends without a meaningful notion of capacity may ignore it.
    fn reserve(&mut self, _additional: usize) {}
}

/// Which [`PendingEvents`] backend a simulation uses. The engine is
/// generic, so this enum exists for the configuration surface — scenario
/// specs, CLI flags (`--queue heap|calendar`) and telemetry provenance —
/// where the choice must be named, serialized and dispatched at runtime.
///
/// Both backends honor the `(time, seq)` contract, so the choice affects
/// wall-clock time only, never results.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QueueBackend {
    /// [`EventQueue`](crate::EventQueue): binary heap, O(log n) per
    /// operation. The default — unbeatable on small pending sets.
    #[default]
    Heap,
    /// [`CalendarQueue`](crate::CalendarQueue): Brown-1988 calendar
    /// queue, O(1) amortized. Wins on large, dense pending sets (see
    /// DESIGN.md §8 for measured crossover numbers).
    Calendar,
}

/// Pending-set size at which [`QueueBackend::for_pending_set`] switches
/// from the heap to the calendar queue. Below this the heap's cache-hot
/// sift beats the calendar's bucket walk; above it the calendar's O(1)
/// amortized operations win (DESIGN.md §8 has the measured crossover).
pub const ADAPTIVE_PENDING_THRESHOLD: usize = 4096;

impl QueueBackend {
    /// Picks a backend for an *estimated* steady-state pending-set size:
    /// [`Heap`](Self::Heap) below [`ADAPTIVE_PENDING_THRESHOLD`],
    /// [`Calendar`](Self::Calendar) at or above it. Purely a wall-clock
    /// heuristic — a wrong estimate costs time, never correctness, since
    /// both backends produce bitwise-identical results.
    pub fn for_pending_set(estimate: usize) -> Self {
        if estimate >= ADAPTIVE_PENDING_THRESHOLD {
            QueueBackend::Calendar
        } else {
            QueueBackend::Heap
        }
    }

    /// The lower-case backend name, as accepted by [`parse`](Self::parse)
    /// and recorded in telemetry.
    pub fn as_str(self) -> &'static str {
        match self {
            QueueBackend::Heap => "heap",
            QueueBackend::Calendar => "calendar",
        }
    }

    /// Parses a backend name (the `--queue` flag values `heap` and
    /// `calendar`); `None` for anything else.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "heap" => Some(QueueBackend::Heap),
            "calendar" => Some(QueueBackend::Calendar),
            _ => None,
        }
    }
}

impl std::fmt::Display for QueueBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_names_round_trip() {
        for b in [QueueBackend::Heap, QueueBackend::Calendar] {
            assert_eq!(QueueBackend::parse(b.as_str()), Some(b));
            assert_eq!(format!("{b}"), b.as_str());
        }
        assert_eq!(QueueBackend::parse("splay"), None);
        assert_eq!(QueueBackend::default(), QueueBackend::Heap);
    }

    #[test]
    fn adaptive_selection_crosses_at_the_threshold() {
        assert_eq!(QueueBackend::for_pending_set(0), QueueBackend::Heap);
        assert_eq!(
            QueueBackend::for_pending_set(ADAPTIVE_PENDING_THRESHOLD - 1),
            QueueBackend::Heap
        );
        assert_eq!(
            QueueBackend::for_pending_set(ADAPTIVE_PENDING_THRESHOLD),
            QueueBackend::Calendar
        );
        assert_eq!(
            QueueBackend::for_pending_set(usize::MAX),
            QueueBackend::Calendar
        );
    }

    #[test]
    fn backend_serde_round_trip() {
        for b in [QueueBackend::Heap, QueueBackend::Calendar] {
            let json = serde_json::to_string(&b).unwrap();
            let back: QueueBackend = serde_json::from_str(&json).unwrap();
            assert_eq!(back, b);
        }
    }
}
