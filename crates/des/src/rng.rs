//! Deterministic, labeled random-number streams.
//!
//! Every stochastic model component draws from its own [`Stream`], derived
//! from the run's root seed plus a stable label (e.g. `"disk.fail.17"`).
//! This gives two properties the wind tunnel relies on:
//!
//! * **Reproducibility** — the same seed yields the same trace, on every
//!   platform, regardless of the `rand` crate version (the generator is
//!   implemented here, not imported).
//! * **Common random numbers** — adding a new model component creates a new
//!   stream without perturbing the draws of existing components, so paired
//!   what-if comparisons (same seed, one config knob changed) see reduced
//!   variance, a standard variance-reduction technique in DES.
//!
//! The generator is xoshiro256++ seeded through SplitMix64, the combination
//! recommended by its authors.

use rand::RngCore;

/// SplitMix64 step; used to expand seeds into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a hash of a label, for deriving per-stream seeds.
fn fnv1a(label: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A xoshiro256++ pseudo-random stream. Implements [`rand::RngCore`], so all
/// of `rand`'s `Rng` extension methods work on it.
#[derive(Debug, Clone)]
pub struct Stream {
    s: [u64; 4],
}

impl Stream {
    /// Creates a stream directly from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state is invalid for xoshiro; splitmix cannot produce
        // four zeros from any input, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        Stream { s }
    }

    /// Next raw 64-bit output.
    #[allow(clippy::should_implement_trait)] // deliberate: the canonical xoshiro step name
    #[inline]
    pub fn next(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform draw in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform draw in open `(0, 1)` — safe to pass to `ln()`.
    #[inline]
    pub fn uniform_open(&mut self) -> f64 {
        loop {
            let u = self.uniform();
            if u > 0.0 {
                return u;
            }
        }
    }

    /// A uniform integer in `[0, n)`. Uses rejection to avoid modulo bias.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next();
            if v < zone {
                return v % n;
            }
        }
    }

    /// A uniform `usize` index in `[0, n)`.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// A Bernoulli draw with success probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `[0, n)` (k ≤ n), in random order.
    /// Uses Floyd's algorithm: O(k) expected draws.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let mut chosen: Vec<usize> = Vec::with_capacity(k);
        self.sample_indices_into(n, k, &mut chosen);
        chosen
    }

    /// [`sample_indices`](Self::sample_indices) into a caller-owned buffer
    /// (cleared first) — the allocation-free path bulk construction uses.
    /// Identical draw sequence to `sample_indices`.
    pub fn sample_indices_into(&mut self, n: usize, k: usize, out: &mut Vec<usize>) {
        assert!(k <= n, "cannot sample {k} distinct values from {n}");
        out.clear();
        for j in (n - k)..n {
            let t = self.index(j + 1);
            if out.contains(&t) {
                out.push(j);
            } else {
                out.push(t);
            }
        }
        self.shuffle(out);
    }
}

impl RngCore for Stream {
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }
    fn next_u64(&mut self) -> u64 {
        self.next()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Derives independent [`Stream`]s from a root seed and stable labels.
#[derive(Debug, Clone)]
pub struct RngFactory {
    root: u64,
}

impl RngFactory {
    /// A factory whose streams are all functions of `root_seed`.
    pub fn new(root_seed: u64) -> Self {
        RngFactory { root: root_seed }
    }

    /// The root seed this factory was built from.
    pub fn root_seed(&self) -> u64 {
        self.root
    }

    /// The stream for `label`. Calling twice with the same label returns an
    /// identical (freshly positioned) stream — hold on to the stream if you
    /// need consecutive draws.
    pub fn stream(&self, label: &str) -> Stream {
        // Mix the root and the label hash through splitmix so that labels
        // differing in one bit yield unrelated streams.
        let mut sm = self.root ^ fnv1a(label).rotate_left(17);
        let seed = splitmix64(&mut sm);
        Stream::from_seed(seed)
    }

    /// A numbered sub-stream, convenient for per-entity streams
    /// (`factory.numbered("disk.fail", disk_id)`).
    pub fn numbered(&self, label: &str, n: u64) -> Stream {
        let mut sm =
            self.root ^ fnv1a(label).rotate_left(17) ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let seed = splitmix64(&mut sm);
        Stream::from_seed(seed)
    }

    /// A derived *factory* for sub-entity `n` of `label` — the same
    /// content-hash derivation as [`RngFactory::numbered`], but returning
    /// a whole factory so the sub-entity can open its own labeled streams
    /// (a simulation partition, a sweep shard). Derivation depends only on
    /// `(root, label, n)`, never on call order, so sub-entity draws are
    /// invariant to how work is grouped or scheduled.
    pub fn subfactory(&self, label: &str, n: u64) -> RngFactory {
        let mut sm =
            self.root ^ fnv1a(label).rotate_left(17) ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        RngFactory::new(splitmix64(&mut sm))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_label_same_stream() {
        let f = RngFactory::new(42);
        let mut a = f.stream("disk");
        let mut b = f.stream("disk");
        for _ in 0..100 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn different_labels_different_streams() {
        let f = RngFactory::new(42);
        let mut a = f.stream("disk");
        let mut b = f.stream("nic");
        let same = (0..100).filter(|_| a.next() == b.next()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn different_seeds_different_streams() {
        let mut a = RngFactory::new(1).stream("x");
        let mut b = RngFactory::new(2).stream("x");
        assert_ne!(a.next(), b.next());
    }

    #[test]
    fn numbered_streams_are_distinct() {
        let f = RngFactory::new(7);
        let mut a = f.numbered("disk.fail", 0);
        let mut b = f.numbered("disk.fail", 1);
        assert_ne!(a.next(), b.next());
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut s = Stream::from_seed(9);
        for _ in 0..10_000 {
            let u = s.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut s = Stream::from_seed(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| s.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn below_is_unbiased_range() {
        let mut s = Stream::from_seed(3);
        let mut counts = [0u32; 7];
        for _ in 0..70_000 {
            counts[s.below(7) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "counts skewed: {counts:?}");
        }
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut s = Stream::from_seed(5);
        for _ in 0..200 {
            let v = s.sample_indices(30, 10);
            assert_eq!(v.len(), 10);
            let mut sorted = v.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 10, "duplicates in {v:?}");
            assert!(v.iter().all(|&i| i < 30));
        }
    }

    #[test]
    fn sample_indices_full_set() {
        let mut s = Stream::from_seed(5);
        let mut v = s.sample_indices(5, 5);
        v.sort_unstable();
        assert_eq!(v, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut s = Stream::from_seed(1);
        let mut buf = [0u8; 13];
        s.fill_bytes(&mut buf);
        // Not all zero with overwhelming probability.
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut s = Stream::from_seed(2);
        let mut v: Vec<u32> = (0..50).collect();
        s.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice sorted (p ~ 1/50!)");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn below_always_in_range(seed in any::<u64>(), n in 1u64..1_000_000) {
            let mut s = Stream::from_seed(seed);
            for _ in 0..50 {
                prop_assert!(s.below(n) < n);
            }
        }

        #[test]
        fn sample_indices_always_distinct(seed in any::<u64>(), n in 1usize..200, frac in 0.0f64..1.0) {
            let k = ((n as f64) * frac) as usize;
            let mut s = Stream::from_seed(seed);
            let v = s.sample_indices(n, k);
            let mut sorted = v.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), k);
        }

        #[test]
        fn streams_are_reproducible(seed in any::<u64>(), label in "[a-z]{1,12}") {
            let f = RngFactory::new(seed);
            let a: Vec<u64> = { let mut s = f.stream(&label); (0..20).map(|_| s.next()).collect() };
            let b: Vec<u64> = { let mut s = f.stream(&label); (0..20).map(|_| s.next()).collect() };
            prop_assert_eq!(a, b);
        }
    }
}
