//! # wt-des — discrete-event simulation kernel
//!
//! The substrate every other `windtunnel` crate builds on: a deterministic
//! discrete-event simulator with
//!
//! * a total-ordered [`SimTime`] clock ([`time`]),
//! * a stable-ordered pending-event queue ([`queue`]),
//! * an execution engine driving a user [`Model`] ([`engine`]),
//! * splittable, labeled random-number streams so that adding a new model
//!   does not perturb the draws of existing ones ([`rng`]),
//! * output statistics: tallies, time-weighted gauges, quantile histograms
//!   and batch-means confidence intervals ([`stats`]),
//! * a reusable multi-server FIFO resource for queueing models ([`resource`]),
//! * an optional observer hook: [`Simulation::run_until_probed`] feeds a
//!   `wt_obs::Probe` (re-exported here as [`obs`]) the label, time and
//!   queue depth of every handled event — one-way instrumentation that
//!   can never perturb results. The `wall-time` cargo feature
//!   additionally times each handler (kept off the determinism path).
//!
//! Determinism is a design invariant: two runs with the same model, seed and
//! horizon produce byte-identical event traces. Ties in event time are broken
//! by insertion sequence number, never by heap internals.
//!
//! ```
//! use wt_des::prelude::*;
//!
//! struct Counter { fired: u32 }
//! impl Model for Counter {
//!     type Event = ();
//!     fn handle(&mut self, _ev: (), ctx: &mut Ctx<'_, ()>) {
//!         self.fired += 1;
//!         if self.fired < 3 {
//!             ctx.schedule_in(SimDuration::from_secs(1.0), ());
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(Counter { fired: 0 }, 42);
//! sim.schedule_at(SimTime::ZERO, ());
//! sim.run();
//! assert_eq!(sim.model().fired, 3);
//! assert_eq!(sim.now(), SimTime::from_secs(2.0));
//! ```

pub mod calendar;
pub mod engine;
pub mod partition;
pub mod pending;
pub mod queue;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod time;

pub use calendar::CalendarQueue;
pub use engine::{Ctx, Model, Simulation, StopReason};
pub use partition::{Lookahead, PartCtx, PartitionModel, PartitionedSimulation};
pub use pending::{PendingEvents, QueueBackend, ADAPTIVE_PENDING_THRESHOLD};
pub use queue::EventQueue;
pub use resource::ServerPool;
pub use rng::{RngFactory, Stream};
pub use stats::{BatchMeans, Counter, Histogram, Tally, TimeWeighted};
pub use time::{SimDuration, SimTime};
pub use wt_obs as obs;
/// Mergeable sketches (HyperLogLog, DDSketch-style quantiles) honoring
/// the same order-deterministic `merge` contract as [`stats`]. Defined
/// in `wt-obs` (the bottom of the dependency graph, so telemetry can
/// embed them) and re-exported here where model authors look for
/// statistics.
pub use wt_obs::sketch;
pub use wt_obs::sketch::{Hll, QuantileSketch};

/// Convenience re-exports for model authors.
pub mod prelude {
    pub use crate::engine::{Ctx, Model, Simulation, StopReason};
    pub use crate::partition::{Lookahead, PartCtx, PartitionModel, PartitionedSimulation};
    pub use crate::pending::{PendingEvents, QueueBackend};
    pub use crate::rng::{RngFactory, Stream};
    pub use crate::stats::{Counter, Histogram, Tally, TimeWeighted};
    pub use crate::time::{SimDuration, SimTime};
    pub use wt_obs::sketch::{Hll, QuantileSketch};
}
