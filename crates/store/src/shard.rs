//! Lock-free per-worker recording: [`StoreShard`] and the [`RecordSink`]
//! abstraction over "somewhere a run can record itself".
//!
//! A DC-scale sweep produces records from every farm worker at once; a
//! single mutex-guarded store serializes the farm on its hottest write
//! path. The sharded flow splits recording from merging:
//!
//! 1. **Record** — each run (or worker chunk) buffers its records into a
//!    private [`StoreShard`]: a plain `Vec` push behind a `RefCell`, no
//!    lock, no atomic, no contention.
//! 2. **Merge** — shards travel to the fold thread with the run results
//!    and are absorbed into the merged [`ResultStore`] **in run-index
//!    order** (`windtunnel::farm` folds in exactly that order), so final
//!    record ids and snapshot order are bitwise-identical for any worker
//!    count — the same guarantee the farm already makes for statistics.
//!
//! [`RecordSink`] is what producers write against: the wind tunnel's
//! `run_*` engines take `&dyn RecordSink`, so the same code records into
//! a worker shard during a farm sweep and directly into a
//! [`SharedStore`] in serial use.
//!
//! [`ResultStore`]: crate::store::ResultStore
//! [`SharedStore`]: crate::store::SharedStore

use crate::record::RunRecord;
use crate::store::SharedStore;
use std::cell::RefCell;

/// Anything a simulation run can record into.
pub trait RecordSink {
    /// Records one run. Implementations assign ids at their own pace:
    /// a [`SharedStore`] immediately, a [`StoreShard`] at merge time.
    fn record(&self, record: RunRecord);
}

/// A private, lock-free record buffer for one worker (or one run).
///
/// Appends are plain `Vec::push`es through a `RefCell` — interior
/// mutability so the farm's shared `Fn` closures can record without
/// `&mut`, but never shared across threads (the shard itself moves to
/// the fold thread for merging). Ids are not assigned here: the merged
/// store assigns them in merge order, which the farm makes
/// deterministic.
#[derive(Debug, Default)]
pub struct StoreShard {
    records: RefCell<Vec<RunRecord>>,
}

impl StoreShard {
    /// An empty shard.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of buffered records.
    pub fn len(&self) -> usize {
        self.records.borrow().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.borrow().is_empty()
    }

    /// Consumes the shard, yielding its records in recording order.
    pub fn into_records(self) -> Vec<RunRecord> {
        self.records.into_inner()
    }

    /// Visits each buffered record in recording order without consuming
    /// the shard — e.g. the farm's heartbeat skimming telemetry off a
    /// shard before merging it.
    pub fn peek<F: FnMut(&RunRecord)>(&self, mut f: F) {
        for record in self.records.borrow().iter() {
            f(record);
        }
    }
}

impl RecordSink for StoreShard {
    fn record(&self, record: RunRecord) {
        self.records.borrow_mut().push(record);
    }
}

impl RecordSink for SharedStore {
    fn record(&self, record: RunRecord) {
        self.append(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::ResultStore;

    fn rec(exp: &str, seed: u64) -> RunRecord {
        RunRecord::new(exp, seed).metric("m", seed as f64)
    }

    #[test]
    fn shard_buffers_in_order_without_ids() {
        let shard = StoreShard::new();
        assert!(shard.is_empty());
        shard.record(rec("a", 1));
        shard.record(rec("a", 2));
        assert_eq!(shard.len(), 2);
        let records = shard.into_records();
        assert_eq!(records.len(), 2);
        assert!(records.iter().all(|r| r.id == 0), "ids assigned at merge");
        assert_eq!(records[0].seed, 1);
        assert_eq!(records[1].seed, 2);
    }

    #[test]
    fn merge_assigns_ids_in_shard_order() {
        let mut store = ResultStore::new();
        let a = StoreShard::new();
        a.record(rec("x", 10));
        a.record(rec("x", 11));
        let b = StoreShard::new();
        b.record(rec("y", 20));
        assert_eq!(store.merge_shard(a), 2);
        assert_eq!(store.merge_shard(b), 1);
        let seeds: Vec<(u64, u64)> = store.records().map(|r| (r.id, r.seed)).collect();
        assert_eq!(seeds, vec![(0, 10), (1, 11), (2, 20)]);
        assert_eq!(store.by_experiment("x").len(), 2);
    }

    #[test]
    fn shared_store_merges_shards_and_serves_as_sink() {
        let store = SharedStore::new();
        RecordSink::record(&store, rec("direct", 1));
        let shard = StoreShard::new();
        shard.record(rec("sharded", 2));
        shard.record(rec("sharded", 3));
        assert_eq!(store.merge_shard(shard), 2);
        assert_eq!(store.len(), 3);
        let ids: Vec<u64> = store.snapshot().iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }
}
