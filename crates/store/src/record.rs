//! The unit of storage: one simulation run's configuration and outputs.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use wt_obs::RunTelemetry;

/// A configuration parameter value. Numeric parameters participate in
/// similarity distances; strings and booleans match categorically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(untagged)]
pub enum ParamValue {
    /// Numeric axis (replication factor, network Gb/s, …).
    Num(f64),
    /// Categorical axis (placement policy name, disk model, …).
    Str(String),
    /// Boolean axis (parallel repair on/off, …).
    Bool(bool),
}

impl ParamValue {
    /// The numeric value, if this is a numeric axis.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            ParamValue::Num(x) => Some(*x),
            _ => None,
        }
    }
}

impl fmt::Display for ParamValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamValue::Num(x) => write!(f, "{x}"),
            ParamValue::Str(s) => write!(f, "{s}"),
            ParamValue::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<f64> for ParamValue {
    fn from(x: f64) -> Self {
        ParamValue::Num(x)
    }
}
impl From<usize> for ParamValue {
    fn from(x: usize) -> Self {
        ParamValue::Num(x as f64)
    }
}
impl From<u32> for ParamValue {
    fn from(x: u32) -> Self {
        ParamValue::Num(x as f64)
    }
}
impl From<&str> for ParamValue {
    fn from(s: &str) -> Self {
        ParamValue::Str(s.to_string())
    }
}
impl From<String> for ParamValue {
    fn from(s: String) -> Self {
        ParamValue::Str(s)
    }
}
impl From<&String> for ParamValue {
    fn from(s: &String) -> Self {
        ParamValue::Str(s.clone())
    }
}
impl From<bool> for ParamValue {
    fn from(b: bool) -> Self {
        ParamValue::Bool(b)
    }
}

/// One simulation run: what was configured, what came out.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunRecord {
    /// Monotone id assigned by the store.
    pub id: u64,
    /// Experiment family, e.g. `"fig1"` or `"e4-provisioning"`.
    pub experiment: String,
    /// Configuration axes.
    pub params: BTreeMap<String, ParamValue>,
    /// Output metrics (availability, p95_s, tco_usd_per_year, …).
    pub metrics: BTreeMap<String, f64>,
    /// Root seed the run used.
    pub seed: u64,
    /// What the run did inside the engine (events, queue depths, stop
    /// reason, wall time), when the producer attached a probe. `None`
    /// for records written before telemetry existed or produced outside
    /// the engines — old JSONL loads cleanly either way.
    pub telemetry: Option<RunTelemetry>,
}

impl RunRecord {
    /// A record builder starting from the experiment name.
    pub fn new(experiment: impl Into<String>, seed: u64) -> Self {
        RunRecord {
            id: 0,
            experiment: experiment.into(),
            params: BTreeMap::new(),
            metrics: BTreeMap::new(),
            seed,
            telemetry: None,
        }
    }

    /// Adds a configuration parameter.
    pub fn param(mut self, key: impl Into<String>, value: impl Into<ParamValue>) -> Self {
        self.params.insert(key.into(), value.into());
        self
    }

    /// Adds an output metric.
    pub fn metric(mut self, key: impl Into<String>, value: f64) -> Self {
        self.metrics.insert(key.into(), value);
        self
    }

    /// A named metric.
    pub fn get_metric(&self, key: &str) -> Option<f64> {
        self.metrics.get(key).copied()
    }

    /// Attaches the run's engine telemetry.
    pub fn telemetry(mut self, t: RunTelemetry) -> Self {
        self.telemetry = Some(t);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates() {
        let r = RunRecord::new("fig1", 7)
            .param("n", 3usize)
            .param("placement", "RR")
            .param("parallel", true)
            .metric("p_unavailable", 0.25);
        assert_eq!(r.experiment, "fig1");
        assert_eq!(r.params["n"], ParamValue::Num(3.0));
        assert_eq!(r.params["placement"], ParamValue::Str("RR".into()));
        assert_eq!(r.params["parallel"], ParamValue::Bool(true));
        assert_eq!(r.get_metric("p_unavailable"), Some(0.25));
        assert_eq!(r.get_metric("missing"), None);
    }

    #[test]
    fn serde_roundtrip() {
        let r = RunRecord::new("e2", 1)
            .param("gbps", 10.0)
            .metric("availability", 0.9999);
        let json = serde_json::to_string(&r).unwrap();
        let back: RunRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn serde_roundtrip_with_telemetry() {
        let mut t = RunTelemetry {
            events: 100,
            horizon_s: 86_400.0,
            peak_queue_depth: 12,
            mean_queue_depth: 4.5,
            stop_reason: "HorizonReached".into(),
            ..RunTelemetry::default()
        };
        t.events_by_label.insert("NodeFail".into(), 60);
        t.events_by_label.insert("NodeBack".into(), 40);
        t.wall.wall_us = 1234;
        let r = RunRecord::new("e3", 9)
            .metric("availability", 0.999)
            .telemetry(t);
        let json = serde_json::to_string(&r).unwrap();
        let back: RunRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.telemetry.as_ref().unwrap().events, 100);
    }

    #[test]
    fn pre_telemetry_json_loads_with_none() {
        // A record line exactly as PR 2 wrote them, no telemetry field.
        let old = r#"{"id":3,"experiment":"e2","params":{"gbps":10.0},"metrics":{"availability":0.9999},"seed":1}"#;
        let back: RunRecord = serde_json::from_str(old).unwrap();
        assert_eq!(back.id, 3);
        assert_eq!(back.telemetry, None);
    }

    #[test]
    fn param_value_display_and_num() {
        assert_eq!(ParamValue::Num(3.5).to_string(), "3.5");
        assert_eq!(ParamValue::Str("R".into()).to_string(), "R");
        assert_eq!(ParamValue::Bool(true).to_string(), "true");
        assert_eq!(ParamValue::Num(2.0).as_num(), Some(2.0));
        assert_eq!(ParamValue::Str("x".into()).as_num(), None);
    }
}
