//! The result store: append, query, persist, and similarity-search
//! simulation runs.
//!
//! The store keeps records in id order (ids are assigned monotonically),
//! which makes `get` a binary search and lets the per-experiment index
//! hold ids rather than offsets — both stay valid under oldest-first
//! eviction, so a capacity-bounded store serves million-run sweeps
//! without unbounded memory growth. Parallel producers never append here
//! directly: they record into lock-free [`crate::shard::StoreShard`]s
//! that are merged in deterministic run order (see [`crate::shard`]).

use crate::record::{ParamValue, RunRecord};
use crate::shard::StoreShard;
use parking_lot::RwLock;
use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;
use std::sync::Arc;
use wt_obs::MetricsSnapshot;

/// An in-memory store of run records with JSON-lines persistence,
/// id/experiment indexes, and an optional capacity bound.
#[derive(Debug, Default)]
pub struct ResultStore {
    /// Records in ascending-id order (append assigns increasing ids).
    records: VecDeque<RunRecord>,
    next_id: u64,
    /// Ids per experiment family, in insertion (= id) order.
    by_exp: BTreeMap<String, VecDeque<u64>>,
    /// Keep at most this many records, evicting the oldest.
    capacity: Option<usize>,
    /// Records evicted so far (for telemetry and tests).
    evicted: u64,
    /// Write-through journal: every append streams one JSON line here.
    journal: Option<BufWriter<std::fs::File>>,
    /// First journal write error; write-through stops once set.
    journal_error: Option<std::io::Error>,
}

impl ResultStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty store that keeps at most `capacity` records, evicting the
    /// oldest (smallest-id) record on overflow.
    pub fn with_capacity(capacity: usize) -> Self {
        ResultStore {
            capacity: Some(capacity.max(1)),
            ..Self::default()
        }
    }

    /// The capacity bound, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Sets or clears the capacity bound, evicting immediately if the
    /// store is already over the new bound.
    pub fn set_capacity(&mut self, capacity: Option<usize>) {
        self.capacity = capacity.map(|c| c.max(1));
        self.enforce_capacity();
    }

    /// Records evicted by the capacity bound so far.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Appends a record, assigning its id. Returns the id.
    pub fn append(&mut self, mut record: RunRecord) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        record.id = id;
        self.journal_write(&record);
        self.push_indexed(record);
        self.enforce_capacity();
        id
    }

    /// Merges a worker shard: every buffered record is appended (ids
    /// assigned here, in shard order). Callers that merge shards in
    /// deterministic run order — as `windtunnel::farm` does — therefore
    /// get identical ids and snapshot order for any worker count.
    /// Returns the number of records merged.
    pub fn merge_shard(&mut self, shard: StoreShard) -> u64 {
        let records = shard.into_records();
        let n = records.len() as u64;
        for r in records {
            self.append(r);
        }
        n
    }

    /// Number of stored records (excludes evicted ones).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All stored records in id order.
    pub fn records(&self) -> impl Iterator<Item = &RunRecord> {
        self.records.iter()
    }

    /// A full copy of the stored records, in id order.
    pub fn snapshot(&self) -> Vec<RunRecord> {
        self.records.iter().cloned().collect()
    }

    /// Distills the stored records into a [`MetricsSnapshot`]: run and
    /// event counters, per-metric quantile summaries (`metric_<name>`,
    /// one observation per record), and every run's telemetry sketches
    /// merged label-wise. Records fold in id order — the same order the
    /// farm's deterministic shard merge assigns — so the snapshot (and
    /// its text exposition) is bitwise worker-count-invariant.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new();
        snap.add_counter("runs_total", self.records.len() as u64);
        let mut events = 0u64;
        for r in &self.records {
            for (key, value) in &r.metrics {
                snap.quantiles
                    .entry(format!("metric_{key}"))
                    .or_default()
                    .record(*value);
            }
            if let Some(t) = &r.telemetry {
                events += t.events;
                if let Some(set) = &t.sketches {
                    snap.merge_sketch_set(set);
                }
            }
        }
        snap.add_counter("events_total", events);
        snap
    }

    /// Record by id: a binary search over the id-ordered records — no
    /// full-store scan, and no index to maintain under eviction.
    pub fn get(&self, id: u64) -> Option<&RunRecord> {
        self.records
            .binary_search_by_key(&id, |r| r.id)
            .ok()
            .map(|i| &self.records[i])
    }

    /// Records of one experiment family, via the experiment index.
    pub fn by_experiment(&self, experiment: &str) -> Vec<&RunRecord> {
        match self.by_exp.get(experiment) {
            None => Vec::new(),
            Some(ids) => ids
                .iter()
                .map(|&id| self.get(id).expect("indexed id present"))
                .collect(),
        }
    }

    /// Records matching a predicate (a scan — predicates are opaque).
    pub fn query(&self, pred: impl Fn(&RunRecord) -> bool) -> Vec<&RunRecord> {
        self.records.iter().filter(|r| pred(r)).collect()
    }

    /// Live record count per experiment family, sorted by name — the
    /// store-occupancy summary behind WTQL's `.stats`. Counts come from
    /// the experiment index, which eviction keeps consistent with a scan.
    pub fn experiment_counts(&self) -> Vec<(String, usize)> {
        self.by_exp
            .iter()
            .filter(|(_, ids)| !ids.is_empty())
            .map(|(exp, ids)| (exp.clone(), ids.len()))
            .collect()
    }

    /// Best record by a metric (`minimize = true` for costs, `false` for
    /// availabilities), restricted to records that have the metric.
    pub fn best_by(&self, metric: &str, minimize: bool) -> Option<&RunRecord> {
        self.records
            .iter()
            .filter(|r| r.metrics.contains_key(metric))
            .min_by(|a, b| {
                let (x, y) = (a.metrics[metric], b.metrics[metric]);
                let ord = x.partial_cmp(&y).expect("finite metrics");
                if minimize {
                    ord
                } else {
                    ord.reverse()
                }
            })
    }

    /// The §4.4 similarity query: the `k` stored configurations closest to
    /// `target`. Distance per shared axis: normalized absolute difference
    /// for numeric values (scaled by the axis's value range across the
    /// store), 0/1 mismatch for categorical/boolean values; axes missing
    /// on either side cost 1. Lower is more similar.
    pub fn find_similar(
        &self,
        target: &BTreeMap<String, ParamValue>,
        k: usize,
    ) -> Vec<(&RunRecord, f64)> {
        // Pre-compute numeric ranges per axis for normalization.
        let mut ranges: BTreeMap<&str, (f64, f64)> = BTreeMap::new();
        for r in &self.records {
            for (key, v) in &r.params {
                if let Some(x) = v.as_num() {
                    let e = ranges.entry(key).or_insert((x, x));
                    e.0 = e.0.min(x);
                    e.1 = e.1.max(x);
                }
            }
        }
        let mut scored: Vec<(&RunRecord, f64)> = self
            .records
            .iter()
            .map(|r| (r, Self::distance(&r.params, target, &ranges)))
            .collect();
        scored.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"));
        scored.truncate(k);
        scored
    }

    fn distance(
        a: &BTreeMap<String, ParamValue>,
        b: &BTreeMap<String, ParamValue>,
        ranges: &BTreeMap<&str, (f64, f64)>,
    ) -> f64 {
        let keys: std::collections::BTreeSet<&String> = a.keys().chain(b.keys()).collect();
        let mut total = 0.0;
        for key in keys {
            match (a.get(key.as_str()), b.get(key.as_str())) {
                (Some(x), Some(y)) => match (x, y) {
                    (ParamValue::Num(x), ParamValue::Num(y)) => {
                        let (lo, hi) = ranges
                            .get(key.as_str())
                            .copied()
                            .unwrap_or((x.min(*y), x.max(*y)));
                        let span = (hi - lo).max(f64::EPSILON);
                        total += ((x - y).abs() / span).min(1.0);
                    }
                    _ => total += if x == y { 0.0 } else { 1.0 },
                },
                _ => total += 1.0,
            }
        }
        total
    }

    /// Streams records of one experiment as CSV (params then metrics as
    /// columns; the union of keys across records, blank where absent) —
    /// the format the figures pipeline consumes. Writing directly to `w`
    /// lets large experiments go to disk without building the whole CSV
    /// in memory.
    pub fn write_csv(&self, experiment: &str, w: &mut impl Write) -> std::io::Result<()> {
        let records = self.by_experiment(experiment);
        let mut param_keys: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
        let mut metric_keys: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
        for r in &records {
            param_keys.extend(r.params.keys().map(String::as_str));
            metric_keys.extend(r.metrics.keys().map(String::as_str));
        }
        write!(w, "id,seed")?;
        for k in &param_keys {
            write!(w, ",{k}")?;
        }
        for k in &metric_keys {
            write!(w, ",{k}")?;
        }
        writeln!(w)?;
        for r in &records {
            write!(w, "{},{}", r.id, r.seed)?;
            for k in &param_keys {
                w.write_all(b",")?;
                if let Some(v) = r.params.get(*k) {
                    let cell = v.to_string();
                    // Quote cells containing separators.
                    if cell.contains(',') || cell.contains('"') {
                        write!(w, "\"{}\"", cell.replace('"', "\"\""))?;
                    } else {
                        w.write_all(cell.as_bytes())?;
                    }
                }
            }
            for k in &metric_keys {
                w.write_all(b",")?;
                if let Some(v) = r.metrics.get(*k) {
                    write!(w, "{v}")?;
                }
            }
            writeln!(w)?;
        }
        Ok(())
    }

    /// [`Self::write_csv`] into a `String`, for small experiments.
    pub fn export_csv(&self, experiment: &str) -> String {
        let mut buf = Vec::new();
        self.write_csv(experiment, &mut buf)
            .expect("in-memory write cannot fail");
        String::from_utf8(buf).expect("CSV is UTF-8")
    }

    /// Persists all records as JSON lines (buffered, one line at a time —
    /// the store is never serialized as a whole).
    pub fn save_jsonl(&self, path: &Path) -> std::io::Result<()> {
        let mut w = BufWriter::new(std::fs::File::create(path)?);
        for r in &self.records {
            let line = serde_json::to_string(r).expect("records serialize");
            writeln!(w, "{line}")?;
        }
        w.flush()
    }

    /// Loads records from a JSON-lines file (ids are preserved; the next
    /// id continues past the maximum loaded). Lines are parsed one at a
    /// time into a reused buffer, so peak memory is the records
    /// themselves, never a second copy of the file.
    pub fn load_jsonl(path: &Path) -> std::io::Result<Self> {
        Self::load_jsonl_bounded(path, None)
    }

    /// [`Self::load_jsonl`] with a capacity bound applied *while
    /// streaming*: for the id-ordered files `save_jsonl` and the journal
    /// produce, at most `capacity` records are resident at any point.
    pub fn load_jsonl_bounded(path: &Path, capacity: Option<usize>) -> std::io::Result<Self> {
        let mut reader = BufReader::with_capacity(1 << 16, std::fs::File::open(path)?);
        let mut store = ResultStore::new();
        store.capacity = capacity.map(|c| c.max(1));
        let mut line = String::new();
        loop {
            line.clear();
            if reader.read_line(&mut line)? == 0 {
                break;
            }
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            let r: RunRecord = serde_json::from_str(trimmed)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
            store.insert_loaded(r);
        }
        Ok(store)
    }

    /// Attaches a write-through journal at `path`: the current records
    /// are written out, and every subsequent append streams one more JSON
    /// line through a buffered writer (evictions never rewrite the file —
    /// the journal is the append-only history). Call [`Self::flush`] to
    /// force buffered lines to disk.
    pub fn journal_to(&mut self, path: &Path) -> std::io::Result<()> {
        let mut w = BufWriter::new(std::fs::File::create(path)?);
        for r in &self.records {
            let line = serde_json::to_string(r).expect("records serialize");
            writeln!(w, "{line}")?;
        }
        self.journal = Some(w);
        self.journal_error = None;
        Ok(())
    }

    /// Flushes the journal, surfacing any write error since the last
    /// flush (write-through stops on the first error).
    pub fn flush(&mut self) -> std::io::Result<()> {
        if let Some(e) = self.journal_error.take() {
            return Err(e);
        }
        match &mut self.journal {
            Some(w) => w.flush(),
            None => Ok(()),
        }
    }

    fn journal_write(&mut self, record: &RunRecord) {
        if let Some(w) = &mut self.journal {
            let line = serde_json::to_string(record).expect("records serialize");
            if let Err(e) = writeln!(w, "{line}") {
                self.journal_error = Some(e);
                self.journal = None; // stop write-through after an error
            }
        }
    }

    /// Appends an already-id'd record, keeping the deque id-ordered even
    /// for hand-edited (out-of-order) files.
    fn insert_loaded(&mut self, r: RunRecord) {
        self.next_id = self.next_id.max(r.id + 1);
        if self.records.back().is_none_or(|b| b.id < r.id) {
            self.push_indexed(r);
        } else {
            // Rare path: an out-of-order line. Insert by id.
            let pos = self.records.partition_point(|x| x.id < r.id);
            let ids = self.by_exp.entry(r.experiment.clone()).or_default();
            let exp_pos = ids.partition_point(|&id| id < r.id);
            ids.insert(exp_pos, r.id);
            self.records.insert(pos, r);
        }
        self.enforce_capacity();
    }

    fn push_indexed(&mut self, record: RunRecord) {
        self.by_exp
            .entry(record.experiment.clone())
            .or_default()
            .push_back(record.id);
        self.records.push_back(record);
    }

    fn enforce_capacity(&mut self) {
        let Some(cap) = self.capacity else { return };
        while self.records.len() > cap {
            let old = self.records.pop_front().expect("len > cap >= 1");
            let ids = self
                .by_exp
                .get_mut(&old.experiment)
                .expect("evicted record was indexed");
            let front = ids.pop_front();
            debug_assert_eq!(front, Some(old.id), "index front is the oldest");
            if ids.is_empty() {
                self.by_exp.remove(&old.experiment);
            }
            self.evicted += 1;
        }
    }
}

/// A clonable, thread-safe handle to the *merged* store — what queries
/// read and what shard merges fold into. Parallel recording does not go
/// through this lock: workers buffer into [`StoreShard`]s and the fold
/// thread merges them one lock acquisition per shard (see
/// `windtunnel::farm::Farm::run_recorded`).
#[derive(Debug, Clone, Default)]
pub struct SharedStore {
    inner: Arc<RwLock<ResultStore>>,
}

impl SharedStore {
    /// A fresh shared store.
    pub fn new() -> Self {
        Self::default()
    }

    /// A shared store with a capacity bound (oldest-first eviction).
    pub fn with_capacity(capacity: usize) -> Self {
        SharedStore {
            inner: Arc::new(RwLock::new(ResultStore::with_capacity(capacity))),
        }
    }

    /// Appends a record (takes the write lock — the contended path the
    /// sharded recording flow avoids).
    pub fn append(&self, record: RunRecord) -> u64 {
        self.inner.write().append(record)
    }

    /// Merges a worker shard under one write-lock acquisition.
    pub fn merge_shard(&self, shard: StoreShard) -> u64 {
        self.inner.write().merge_shard(shard)
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// Runs `f` over the locked store (read access).
    pub fn with<R>(&self, f: impl FnOnce(&ResultStore) -> R) -> R {
        f(&self.inner.read())
    }

    /// Runs `f` over the locked store (write access) — capacity changes,
    /// journal attachment, flushes.
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut ResultStore) -> R) -> R {
        f(&mut self.inner.write())
    }

    /// Extracts a full copy of the records.
    pub fn snapshot(&self) -> Vec<RunRecord> {
        self.inner.read().snapshot()
    }

    /// See [`ResultStore::metrics_snapshot`].
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.inner.read().metrics_snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(exp: &str, n: f64, placement: &str, avail: f64) -> RunRecord {
        RunRecord::new(exp, 1)
            .param("n", n)
            .param("placement", placement)
            .metric("availability", avail)
    }

    #[test]
    fn metrics_snapshot_folds_metrics_and_sketches() {
        use wt_obs::{RunTelemetry, SketchSet};
        let mut s = ResultStore::new();
        for i in 0..10u64 {
            let mut set = SketchSet::default();
            let mut q = wt_obs::QuantileSketch::new();
            q.record((i + 1) as f64);
            set.values.insert("wait_s".into(), q);
            let mut h = wt_obs::Hll::new();
            h.insert(i % 4); // 4 distinct keys across the store
            set.distincts.insert("objects".into(), h);
            let t = RunTelemetry {
                events: 100,
                sketches: Some(set),
                ..RunTelemetry::default()
            };
            s.append(rec("e", i as f64, "R", 0.9).telemetry(t));
        }
        let snap = s.metrics_snapshot();
        assert_eq!(snap.counters["runs_total"], 10);
        assert_eq!(snap.counters["events_total"], 1000);
        // Per-record scalar metrics fold into a summary...
        assert_eq!(snap.quantiles["metric_availability"].count(), 10);
        // ...and telemetry sketches merge label-wise.
        assert_eq!(snap.quantiles["wait_s"].count(), 10);
        let distinct = snap.distincts["objects"].estimate().round() as u64;
        assert_eq!(distinct, 4);
        let text = snap.render();
        assert!(text.contains("wt_runs_total 10"));
        assert!(text.contains("# TYPE wt_wait_s summary"));
        assert!(text.contains("wt_objects_distinct 4"));
    }

    #[test]
    fn append_assigns_monotone_ids() {
        let mut s = ResultStore::new();
        let a = s.append(rec("fig1", 3.0, "R", 0.9));
        let b = s.append(rec("fig1", 5.0, "R", 0.99));
        assert_eq!((a, b), (0, 1));
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(1).unwrap().params["n"], ParamValue::Num(5.0));
        assert!(s.get(99).is_none());
    }

    #[test]
    fn query_and_by_experiment() {
        let mut s = ResultStore::new();
        s.append(rec("fig1", 3.0, "R", 0.9));
        s.append(rec("fig1", 5.0, "RR", 0.99));
        s.append(rec("e2", 3.0, "R", 0.95));
        assert_eq!(s.by_experiment("fig1").len(), 2);
        assert!(s.by_experiment("nope").is_empty());
        let high = s.query(|r| r.get_metric("availability").unwrap_or(0.0) > 0.92);
        assert_eq!(high.len(), 2);
    }

    #[test]
    fn best_by_metric() {
        let mut s = ResultStore::new();
        s.append(rec("e4", 3.0, "R", 0.90));
        s.append(rec("e4", 5.0, "R", 0.99));
        let best = s.best_by("availability", false).unwrap();
        assert_eq!(best.params["n"], ParamValue::Num(5.0));
        let worst = s.best_by("availability", true).unwrap();
        assert_eq!(worst.params["n"], ParamValue::Num(3.0));
        assert!(s.best_by("nope", true).is_none());
    }

    #[test]
    fn similarity_prefers_nearby_configs() {
        let mut s = ResultStore::new();
        s.append(rec("fig1", 3.0, "R", 0.9));
        s.append(rec("fig1", 5.0, "R", 0.95));
        s.append(rec("fig1", 3.0, "RR", 0.92));
        let mut target = BTreeMap::new();
        target.insert("n".to_string(), ParamValue::Num(3.0));
        target.insert("placement".to_string(), ParamValue::Str("R".into()));
        let sims = s.find_similar(&target, 2);
        assert_eq!(sims.len(), 2);
        // Exact match first with distance 0.
        assert_eq!(sims[0].0.params["placement"], ParamValue::Str("R".into()));
        assert_eq!(sims[0].0.params["n"], ParamValue::Num(3.0));
        assert_eq!(sims[0].1, 0.0);
        assert!(sims[1].1 > 0.0);
    }

    #[test]
    fn similarity_normalizes_numeric_axes() {
        let mut s = ResultStore::new();
        // Axis "mem" spans 64..1024: a 64 GB difference is small.
        s.append(RunRecord::new("e4", 1).param("mem", 64.0));
        s.append(RunRecord::new("e4", 1).param("mem", 128.0));
        s.append(RunRecord::new("e4", 1).param("mem", 1024.0));
        let mut target = BTreeMap::new();
        target.insert("mem".to_string(), ParamValue::Num(96.0));
        let sims = s.find_similar(&target, 3);
        let mems: Vec<f64> = sims
            .iter()
            .map(|(r, _)| r.params["mem"].as_num().unwrap())
            .collect();
        assert_eq!(mems, vec![64.0, 128.0, 1024.0]);
    }

    #[test]
    fn missing_axes_cost_full_distance() {
        let mut s = ResultStore::new();
        s.append(RunRecord::new("x", 1).param("a", 1.0));
        let mut target = BTreeMap::new();
        target.insert("b".to_string(), ParamValue::Num(1.0));
        let sims = s.find_similar(&target, 1);
        assert_eq!(sims[0].1, 2.0); // both "a" and "b" unmatched
    }

    #[test]
    fn csv_export_has_union_of_columns() {
        let mut s = ResultStore::new();
        s.append(rec("fig1", 3.0, "R", 0.9));
        s.append(
            RunRecord::new("fig1", 2)
                .param("n", 5.0)
                .param("extra", "x,y") // needs quoting
                .metric("availability", 0.99)
                .metric("tco", 100.0),
        );
        s.append(rec("other", 1.0, "RR", 0.5));
        let csv = s.export_csv("fig1");
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3, "{csv}");
        assert_eq!(lines[0], "id,seed,extra,n,placement,availability,tco");
        // First record has no 'extra'/'tco': blank cells.
        assert!(lines[1].starts_with("0,1,,3,R,0.9,"));
        // The comma-bearing value is quoted.
        assert!(lines[2].contains("\"x,y\""), "{}", lines[2]);
    }

    #[test]
    fn write_csv_streams_identically_to_export() {
        let mut s = ResultStore::new();
        s.append(rec("fig1", 3.0, "R", 0.9));
        s.append(rec("fig1", 5.0, "RR", 0.99));
        let mut streamed = Vec::new();
        s.write_csv("fig1", &mut streamed).unwrap();
        assert_eq!(String::from_utf8(streamed).unwrap(), s.export_csv("fig1"));
    }

    #[test]
    fn jsonl_roundtrip() {
        let mut s = ResultStore::new();
        s.append(rec("fig1", 3.0, "R", 0.9));
        s.append(rec("fig1", 5.0, "RR", 0.99));
        let dir = std::env::temp_dir().join("wt-store-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("results.jsonl");
        s.save_jsonl(&path).unwrap();
        let loaded = ResultStore::load_jsonl(&path).unwrap();
        assert_eq!(loaded.snapshot(), s.snapshot());
        // Appending continues past the loaded ids.
        let mut loaded = loaded;
        let id = loaded.append(rec("fig1", 7.0, "R", 0.999));
        assert_eq!(id, 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pre_sketch_jsonl_still_loads() {
        // Files written before telemetry grew its `sketches` field have
        // no such member at all; they must keep loading, with sketches
        // deserializing as `None` and every other field intact.
        let mut s = ResultStore::new();
        let t = wt_obs::RunTelemetry {
            events: 42,
            stop_reason: "HorizonReached".into(),
            ..Default::default()
        };
        s.append(
            RunRecord::new("old-format", 9)
                .metric("availability", 0.99)
                .telemetry(t),
        );
        let dir = std::env::temp_dir().join("wt-store-test-presketch");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("old.jsonl");
        s.save_jsonl(&path).unwrap();
        // Rewrite the file as the pre-sketch format: drop the member.
        let text = std::fs::read_to_string(&path).unwrap();
        let stripped = text
            .replace("\"sketches\":null,", "")
            .replace(",\"sketches\":null", "");
        assert_ne!(stripped, text, "expected a sketches member to strip");
        std::fs::write(&path, &stripped).unwrap();
        let loaded = ResultStore::load_jsonl(&path).unwrap();
        let recs = loaded.snapshot();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].metrics["availability"], 0.99);
        let t = recs[0].telemetry.as_ref().expect("telemetry still parses");
        assert_eq!(t.events, 42);
        assert_eq!(t.sketches, None);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn get_handles_id_gaps_after_load() {
        // Eviction (or hand-pruning a JSONL file) leaves gaps in the id
        // sequence; `get` must still resolve ids on both sides of a gap
        // and miss cleanly inside it.
        let mut s = ResultStore::new();
        for i in 0..6 {
            s.append(rec("gap", i as f64, "R", 0.9));
        }
        let dir = std::env::temp_dir().join("wt-store-test-gaps");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("gappy.jsonl");
        s.save_jsonl(&path).unwrap();
        // Drop ids 2 and 3 from the file.
        let kept: Vec<String> = std::fs::read_to_string(&path)
            .unwrap()
            .lines()
            .filter(|l| !l.contains("\"id\":2") && !l.contains("\"id\":3"))
            .map(String::from)
            .collect();
        std::fs::write(&path, kept.join("\n")).unwrap();
        let loaded = ResultStore::load_jsonl(&path).unwrap();
        assert_eq!(loaded.len(), 4);
        assert_eq!(loaded.get(1).unwrap().params["n"], ParamValue::Num(1.0));
        assert_eq!(loaded.get(4).unwrap().params["n"], ParamValue::Num(4.0));
        assert!(loaded.get(2).is_none());
        assert!(loaded.get(3).is_none());
        // New ids continue past the loaded maximum, not into the gap.
        let mut loaded = loaded;
        assert_eq!(loaded.append(rec("gap", 9.0, "R", 0.9)), 6);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_tolerates_out_of_order_lines() {
        let dir = std::env::temp_dir().join("wt-store-test-ooo");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shuffled.jsonl");
        let mut s = ResultStore::new();
        for i in 0..4 {
            s.append(rec("ooo", i as f64, "R", 0.9));
        }
        let mut lines: Vec<String> = {
            let mut buf = Vec::new();
            for r in s.records() {
                buf.push(serde_json::to_string(r).unwrap());
            }
            buf
        };
        lines.swap(1, 3); // file order: 0, 3, 2, 1
        std::fs::write(&path, lines.join("\n")).unwrap();
        let loaded = ResultStore::load_jsonl(&path).unwrap();
        let ids: Vec<u64> = loaded.records().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3], "store re-sorts by id");
        assert_eq!(loaded.by_experiment("ooo").len(), 4);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn capacity_evicts_oldest_and_keeps_indexes_consistent() {
        let mut s = ResultStore::with_capacity(3);
        for i in 0..7 {
            let exp = if i % 2 == 0 { "even" } else { "odd" };
            s.append(rec(exp, i as f64, "R", 0.9));
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.evicted(), 4);
        // Ids 0..=3 evicted, 4..=6 remain.
        for id in 0..4u64 {
            assert!(s.get(id).is_none(), "id {id} should be evicted");
        }
        let ids: Vec<u64> = s.records().map(|r| r.id).collect();
        assert_eq!(ids, vec![4, 5, 6]);
        // The experiment index agrees exactly with a scan.
        let even: Vec<u64> = s.by_experiment("even").iter().map(|r| r.id).collect();
        assert_eq!(even, vec![4, 6]);
        let odd: Vec<u64> = s.by_experiment("odd").iter().map(|r| r.id).collect();
        assert_eq!(odd, vec![5]);
        // New appends keep ids monotone past the evicted range.
        assert_eq!(s.append(rec("even", 9.0, "R", 0.9)), 7);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn bounded_load_keeps_only_newest() {
        let mut s = ResultStore::new();
        for i in 0..10 {
            s.append(rec("big", i as f64, "R", 0.9));
        }
        let dir = std::env::temp_dir().join("wt-store-test-bounded");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("big.jsonl");
        s.save_jsonl(&path).unwrap();
        let loaded = ResultStore::load_jsonl_bounded(&path, Some(4)).unwrap();
        let ids: Vec<u64> = loaded.records().map(|r| r.id).collect();
        assert_eq!(ids, vec![6, 7, 8, 9]);
        assert_eq!(loaded.capacity(), Some(4));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn journal_writes_through_on_append() {
        let dir = std::env::temp_dir().join("wt-store-test-journal");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.jsonl");
        let mut s = ResultStore::new();
        s.append(rec("j", 0.0, "R", 0.9)); // before the journal attaches
        s.journal_to(&path).unwrap();
        s.append(rec("j", 1.0, "R", 0.9));
        s.append(rec("j", 2.0, "R", 0.9));
        s.flush().unwrap();
        let replayed = ResultStore::load_jsonl(&path).unwrap();
        assert_eq!(replayed.snapshot(), s.snapshot());
        // Eviction does not rewrite the journal: history is append-only.
        s.set_capacity(Some(1));
        s.flush().unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(ResultStore::load_jsonl(&path).unwrap().len(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shared_store_concurrent_appends() {
        let store = SharedStore::new();
        std::thread::scope(|scope| {
            for t in 0..8 {
                let store = store.clone();
                scope.spawn(move || {
                    for i in 0..50 {
                        store.append(RunRecord::new("conc", t * 100 + i).param("t", t as f64));
                    }
                });
            }
        });
        assert_eq!(store.len(), 400);
        // All ids distinct.
        let mut ids: Vec<u64> = store.snapshot().iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 400);
    }
}
