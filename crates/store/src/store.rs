//! The result store: append, query, persist, and similarity-search
//! simulation runs.

use crate::record::{ParamValue, RunRecord};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::path::Path;
use std::sync::Arc;

/// An in-memory store of run records with JSON-lines persistence.
#[derive(Debug, Default)]
pub struct ResultStore {
    records: Vec<RunRecord>,
    next_id: u64,
}

impl ResultStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record, assigning its id. Returns the id.
    pub fn append(&mut self, mut record: RunRecord) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        record.id = id;
        self.records.push(record);
        id
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records (insertion order).
    pub fn records(&self) -> &[RunRecord] {
        &self.records
    }

    /// Record by id.
    pub fn get(&self, id: u64) -> Option<&RunRecord> {
        self.records.iter().find(|r| r.id == id)
    }

    /// Records of one experiment family.
    pub fn by_experiment(&self, experiment: &str) -> Vec<&RunRecord> {
        self.records
            .iter()
            .filter(|r| r.experiment == experiment)
            .collect()
    }

    /// Records matching a predicate.
    pub fn query(&self, pred: impl Fn(&RunRecord) -> bool) -> Vec<&RunRecord> {
        self.records.iter().filter(|r| pred(r)).collect()
    }

    /// Best record by a metric (`minimize = true` for costs, `false` for
    /// availabilities), restricted to records that have the metric.
    pub fn best_by(&self, metric: &str, minimize: bool) -> Option<&RunRecord> {
        self.records
            .iter()
            .filter(|r| r.metrics.contains_key(metric))
            .min_by(|a, b| {
                let (x, y) = (a.metrics[metric], b.metrics[metric]);
                let ord = x.partial_cmp(&y).expect("finite metrics");
                if minimize {
                    ord
                } else {
                    ord.reverse()
                }
            })
    }

    /// The §4.4 similarity query: the `k` stored configurations closest to
    /// `target`. Distance per shared axis: normalized absolute difference
    /// for numeric values (scaled by the axis's value range across the
    /// store), 0/1 mismatch for categorical/boolean values; axes missing
    /// on either side cost 1. Lower is more similar.
    pub fn find_similar(
        &self,
        target: &BTreeMap<String, ParamValue>,
        k: usize,
    ) -> Vec<(&RunRecord, f64)> {
        // Pre-compute numeric ranges per axis for normalization.
        let mut ranges: BTreeMap<&str, (f64, f64)> = BTreeMap::new();
        for r in &self.records {
            for (key, v) in &r.params {
                if let Some(x) = v.as_num() {
                    let e = ranges.entry(key).or_insert((x, x));
                    e.0 = e.0.min(x);
                    e.1 = e.1.max(x);
                }
            }
        }
        let mut scored: Vec<(&RunRecord, f64)> = self
            .records
            .iter()
            .map(|r| (r, Self::distance(&r.params, target, &ranges)))
            .collect();
        scored.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"));
        scored.truncate(k);
        scored
    }

    fn distance(
        a: &BTreeMap<String, ParamValue>,
        b: &BTreeMap<String, ParamValue>,
        ranges: &BTreeMap<&str, (f64, f64)>,
    ) -> f64 {
        let keys: std::collections::BTreeSet<&String> = a.keys().chain(b.keys()).collect();
        let mut total = 0.0;
        for key in keys {
            match (a.get(key.as_str()), b.get(key.as_str())) {
                (Some(x), Some(y)) => match (x, y) {
                    (ParamValue::Num(x), ParamValue::Num(y)) => {
                        let (lo, hi) = ranges
                            .get(key.as_str())
                            .copied()
                            .unwrap_or((x.min(*y), x.max(*y)));
                        let span = (hi - lo).max(f64::EPSILON);
                        total += ((x - y).abs() / span).min(1.0);
                    }
                    _ => total += if x == y { 0.0 } else { 1.0 },
                },
                _ => total += 1.0,
            }
        }
        total
    }

    /// Exports records of one experiment as CSV (params then metrics as
    /// columns; the union of keys across records, blank where absent) —
    /// the format the figures pipeline consumes.
    pub fn export_csv(&self, experiment: &str) -> String {
        let records = self.by_experiment(experiment);
        let mut param_keys: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
        let mut metric_keys: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
        for r in &records {
            param_keys.extend(r.params.keys().map(String::as_str));
            metric_keys.extend(r.metrics.keys().map(String::as_str));
        }
        let mut out = String::new();
        out.push_str("id,seed");
        for k in &param_keys {
            out.push(',');
            out.push_str(k);
        }
        for k in &metric_keys {
            out.push(',');
            out.push_str(k);
        }
        out.push('\n');
        for r in &records {
            out.push_str(&format!("{},{}", r.id, r.seed));
            for k in &param_keys {
                out.push(',');
                if let Some(v) = r.params.get(*k) {
                    let cell = v.to_string();
                    // Quote cells containing separators.
                    if cell.contains(',') || cell.contains('"') {
                        out.push('"');
                        out.push_str(&cell.replace('"', "\"\""));
                        out.push('"');
                    } else {
                        out.push_str(&cell);
                    }
                }
            }
            for k in &metric_keys {
                out.push(',');
                if let Some(v) = r.metrics.get(*k) {
                    out.push_str(&format!("{v}"));
                }
            }
            out.push('\n');
        }
        out
    }

    /// Persists all records as JSON lines.
    pub fn save_jsonl(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        for r in &self.records {
            let line = serde_json::to_string(r).expect("records serialize");
            writeln!(f, "{line}")?;
        }
        Ok(())
    }

    /// Loads records from a JSON-lines file (ids are preserved; the next
    /// id continues past the maximum loaded).
    pub fn load_jsonl(path: &Path) -> std::io::Result<Self> {
        let f = std::fs::File::open(path)?;
        let mut records = Vec::new();
        let mut max_id = 0u64;
        for line in BufReader::new(f).lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let r: RunRecord = serde_json::from_str(&line)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
            max_id = max_id.max(r.id);
            records.push(r);
        }
        let next_id = if records.is_empty() { 0 } else { max_id + 1 };
        Ok(ResultStore { records, next_id })
    }
}

/// A clonable, thread-safe handle to a store — what the parallel query
/// runner (`wt-wtql`) writes into from worker threads.
#[derive(Debug, Clone, Default)]
pub struct SharedStore {
    inner: Arc<RwLock<ResultStore>>,
}

impl SharedStore {
    /// A fresh shared store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record.
    pub fn append(&self, record: RunRecord) -> u64 {
        self.inner.write().append(record)
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// Runs `f` over the locked store (read access).
    pub fn with<R>(&self, f: impl FnOnce(&ResultStore) -> R) -> R {
        f(&self.inner.read())
    }

    /// Extracts a full copy of the records.
    pub fn snapshot(&self) -> Vec<RunRecord> {
        self.inner.read().records().to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(exp: &str, n: f64, placement: &str, avail: f64) -> RunRecord {
        RunRecord::new(exp, 1)
            .param("n", n)
            .param("placement", placement)
            .metric("availability", avail)
    }

    #[test]
    fn append_assigns_monotone_ids() {
        let mut s = ResultStore::new();
        let a = s.append(rec("fig1", 3.0, "R", 0.9));
        let b = s.append(rec("fig1", 5.0, "R", 0.99));
        assert_eq!((a, b), (0, 1));
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(1).unwrap().params["n"], ParamValue::Num(5.0));
        assert!(s.get(99).is_none());
    }

    #[test]
    fn query_and_by_experiment() {
        let mut s = ResultStore::new();
        s.append(rec("fig1", 3.0, "R", 0.9));
        s.append(rec("fig1", 5.0, "RR", 0.99));
        s.append(rec("e2", 3.0, "R", 0.95));
        assert_eq!(s.by_experiment("fig1").len(), 2);
        let high = s.query(|r| r.get_metric("availability").unwrap_or(0.0) > 0.92);
        assert_eq!(high.len(), 2);
    }

    #[test]
    fn best_by_metric() {
        let mut s = ResultStore::new();
        s.append(rec("e4", 3.0, "R", 0.90));
        s.append(rec("e4", 5.0, "R", 0.99));
        let best = s.best_by("availability", false).unwrap();
        assert_eq!(best.params["n"], ParamValue::Num(5.0));
        let worst = s.best_by("availability", true).unwrap();
        assert_eq!(worst.params["n"], ParamValue::Num(3.0));
        assert!(s.best_by("nope", true).is_none());
    }

    #[test]
    fn similarity_prefers_nearby_configs() {
        let mut s = ResultStore::new();
        s.append(rec("fig1", 3.0, "R", 0.9));
        s.append(rec("fig1", 5.0, "R", 0.95));
        s.append(rec("fig1", 3.0, "RR", 0.92));
        let mut target = BTreeMap::new();
        target.insert("n".to_string(), ParamValue::Num(3.0));
        target.insert("placement".to_string(), ParamValue::Str("R".into()));
        let sims = s.find_similar(&target, 2);
        assert_eq!(sims.len(), 2);
        // Exact match first with distance 0.
        assert_eq!(sims[0].0.params["placement"], ParamValue::Str("R".into()));
        assert_eq!(sims[0].0.params["n"], ParamValue::Num(3.0));
        assert_eq!(sims[0].1, 0.0);
        assert!(sims[1].1 > 0.0);
    }

    #[test]
    fn similarity_normalizes_numeric_axes() {
        let mut s = ResultStore::new();
        // Axis "mem" spans 64..1024: a 64 GB difference is small.
        s.append(RunRecord::new("e4", 1).param("mem", 64.0));
        s.append(RunRecord::new("e4", 1).param("mem", 128.0));
        s.append(RunRecord::new("e4", 1).param("mem", 1024.0));
        let mut target = BTreeMap::new();
        target.insert("mem".to_string(), ParamValue::Num(96.0));
        let sims = s.find_similar(&target, 3);
        let mems: Vec<f64> = sims
            .iter()
            .map(|(r, _)| r.params["mem"].as_num().unwrap())
            .collect();
        assert_eq!(mems, vec![64.0, 128.0, 1024.0]);
    }

    #[test]
    fn missing_axes_cost_full_distance() {
        let mut s = ResultStore::new();
        s.append(RunRecord::new("x", 1).param("a", 1.0));
        let mut target = BTreeMap::new();
        target.insert("b".to_string(), ParamValue::Num(1.0));
        let sims = s.find_similar(&target, 1);
        assert_eq!(sims[0].1, 2.0); // both "a" and "b" unmatched
    }

    #[test]
    fn csv_export_has_union_of_columns() {
        let mut s = ResultStore::new();
        s.append(rec("fig1", 3.0, "R", 0.9));
        s.append(
            RunRecord::new("fig1", 2)
                .param("n", 5.0)
                .param("extra", "x,y") // needs quoting
                .metric("availability", 0.99)
                .metric("tco", 100.0),
        );
        s.append(rec("other", 1.0, "RR", 0.5));
        let csv = s.export_csv("fig1");
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3, "{csv}");
        assert_eq!(lines[0], "id,seed,extra,n,placement,availability,tco");
        // First record has no 'extra'/'tco': blank cells.
        assert!(lines[1].starts_with("0,1,,3,R,0.9,"));
        // The comma-bearing value is quoted.
        assert!(lines[2].contains("\"x,y\""), "{}", lines[2]);
    }

    #[test]
    fn jsonl_roundtrip() {
        let mut s = ResultStore::new();
        s.append(rec("fig1", 3.0, "R", 0.9));
        s.append(rec("fig1", 5.0, "RR", 0.99));
        let dir = std::env::temp_dir().join("wt-store-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("results.jsonl");
        s.save_jsonl(&path).unwrap();
        let loaded = ResultStore::load_jsonl(&path).unwrap();
        assert_eq!(loaded.records(), s.records());
        // Appending continues past the loaded ids.
        let mut loaded = loaded;
        let id = loaded.append(rec("fig1", 7.0, "R", 0.999));
        assert_eq!(id, 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shared_store_concurrent_appends() {
        let store = SharedStore::new();
        std::thread::scope(|scope| {
            for t in 0..8 {
                let store = store.clone();
                scope.spawn(move || {
                    for i in 0..50 {
                        store.append(RunRecord::new("conc", t * 100 + i).param("t", t as f64));
                    }
                });
            }
        });
        assert_eq!(store.len(), 400);
        // All ids distinct.
        let mut ids: Vec<u64> = store.snapshot().iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 400);
    }
}
