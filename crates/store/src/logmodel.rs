//! Operational-log → model pipeline (§4.4): "transformation algorithms
//! that convert log data into meaningful models (e.g., probability
//! distributions) that can be used by the wind tunnel".
//!
//! Logs are flat event streams (component kind, event, timestamp). The
//! pipeline groups them per component instance, extracts the durations the
//! simulator needs — time-between-failures and time-under-repair — and
//! fits candidate distribution families, reporting goodness of fit so the
//! operator can decide whether a parametric model or the empirical
//! distribution should seed the simulator.

use serde::{Deserialize, Serialize};
use wt_des::rng::Stream;
use wt_dist::fit::fit_best;
use wt_dist::{Dist, FitReport};

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LogEvent {
    /// The component went down.
    Failure,
    /// The component came back.
    Restored,
}

/// One line of an operational log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogRecord {
    /// Component kind, e.g. `"disk"`, `"nic"`.
    pub component: String,
    /// Instance id within the kind.
    pub instance: u32,
    /// Event type.
    pub event: LogEvent,
    /// Seconds since the log epoch.
    pub at_s: f64,
}

/// The fitted models for one component kind.
#[derive(Debug, Clone)]
pub struct ModelSeed {
    /// Component kind the models describe.
    pub component: String,
    /// Ranked fits for time-between-failures (best first).
    pub ttf_fits: Vec<FitReport>,
    /// Ranked fits for repair durations (best first).
    pub repair_fits: Vec<FitReport>,
    /// Number of failure intervals observed.
    pub ttf_samples: usize,
    /// Number of repair intervals observed.
    pub repair_samples: usize,
}

impl ModelSeed {
    /// The best TTF model (panics if no fits — callers check samples).
    pub fn best_ttf(&self) -> &FitReport {
        &self.ttf_fits[0]
    }

    /// The best repair model.
    pub fn best_repair(&self) -> &FitReport {
        &self.repair_fits[0]
    }
}

/// Extracts per-kind duration samples and fits models.
///
/// For each component instance, a `Failure` at `t1` followed by `Restored`
/// at `t2` yields a repair duration `t2 − t1`; a `Restored` at `t2`
/// followed by the next `Failure` at `t3` yields an uptime (TTF) sample
/// `t3 − t2`. The first failure's preceding uptime (from the epoch) is
/// also counted. Malformed sequences (double failures) are skipped, as a
/// real log sanitizer must.
pub fn seed_models(log: &[LogRecord]) -> Vec<ModelSeed> {
    use std::collections::BTreeMap;
    // (kind, instance) -> sorted events.
    let mut per_instance: BTreeMap<(String, u32), Vec<(f64, LogEvent)>> = BTreeMap::new();
    for r in log {
        per_instance
            .entry((r.component.clone(), r.instance))
            .or_default()
            .push((r.at_s, r.event));
    }
    let mut ttf: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    let mut repair: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for ((kind, _), mut events) in per_instance {
        events.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite timestamps"));
        let mut last_restored = 0.0f64; // epoch counts as "restored"
        let mut down_since: Option<f64> = None;
        for (at, ev) in events {
            match ev {
                LogEvent::Failure => {
                    if down_since.is_none() {
                        let up = at - last_restored;
                        if up > 0.0 {
                            ttf.entry(kind.clone()).or_default().push(up);
                        }
                        down_since = Some(at);
                    }
                    // double failure: skip (sanitization)
                }
                LogEvent::Restored => {
                    if let Some(started) = down_since.take() {
                        let dur = at - started;
                        if dur > 0.0 {
                            repair.entry(kind.clone()).or_default().push(dur);
                        }
                        last_restored = at;
                    }
                }
            }
        }
    }
    let kinds: std::collections::BTreeSet<String> =
        ttf.keys().chain(repair.keys()).cloned().collect();
    kinds
        .into_iter()
        .map(|kind| {
            let ttf_data = ttf.remove(&kind).unwrap_or_default();
            let repair_data = repair.remove(&kind).unwrap_or_default();
            ModelSeed {
                ttf_samples: ttf_data.len(),
                repair_samples: repair_data.len(),
                ttf_fits: if ttf_data.len() >= 2 {
                    fit_best(&ttf_data)
                } else {
                    Vec::new()
                },
                repair_fits: if repair_data.len() >= 2 {
                    fit_best(&repair_data)
                } else {
                    Vec::new()
                },
                component: kind,
            }
        })
        .collect()
}

/// Generates a synthetic operational log for `instances` components of one
/// kind, with ground-truth TTF and repair distributions — the validation
/// harness for the pipeline (experiment E10: fit models from the log, feed
/// them to the simulator, compare against the ground truth).
pub fn generate_log(
    component: &str,
    instances: u32,
    horizon_s: f64,
    ttf: &Dist,
    repair: &Dist,
    rng: &mut Stream,
) -> Vec<LogRecord> {
    let mut log = Vec::new();
    for instance in 0..instances {
        let mut t = 0.0f64;
        loop {
            t += ttf.sample(rng);
            if t >= horizon_s {
                break;
            }
            log.push(LogRecord {
                component: component.to_string(),
                instance,
                event: LogEvent::Failure,
                at_s: t,
            });
            t += repair.sample(rng);
            if t >= horizon_s {
                break;
            }
            log.push(LogRecord {
                component: component.to_string(),
                instance,
                event: LogEvent::Restored,
                at_s: t,
            });
        }
    }
    log.sort_by(|a, b| a.at_s.partial_cmp(&b.at_s).expect("finite"));
    log
}

#[cfg(test)]
mod tests {
    use super::*;

    const DAY: f64 = 86_400.0;

    #[test]
    fn pipeline_recovers_ground_truth_families() {
        // Weibull failures + lognormal repairs, as the field studies say.
        let ttf_truth = Dist::weibull_mean(0.7, 60.0 * DAY);
        let repair_truth = Dist::lognormal_mean_cv(6.0 * 3600.0, 1.2);
        let mut rng = Stream::from_seed(42);
        let log = generate_log(
            "disk",
            400,
            3.0 * 365.0 * DAY,
            &ttf_truth,
            &repair_truth,
            &mut rng,
        );
        assert!(log.len() > 2_000, "log too small: {}", log.len());
        let seeds = seed_models(&log);
        assert_eq!(seeds.len(), 1);
        let seed = &seeds[0];
        assert_eq!(seed.component, "disk");
        assert!(seed.ttf_samples > 1_000);
        // The winning families match the ground truth.
        assert_eq!(
            seed.best_ttf().family,
            "weibull",
            "ttf fits: {:?}",
            seed.ttf_fits
                .iter()
                .map(|f| (f.family, f.ks.statistic))
                .collect::<Vec<_>>()
        );
        assert_eq!(seed.best_repair().family, "lognormal");
        // And the fitted mean is close to truth. A finite log window
        // right-censors long uptimes (they never produce a next-failure
        // event), biasing heavy-tailed fits low — a real artifact any
        // log-seeded model carries, hence the generous tolerance.
        let fitted_mean = seed.best_ttf().dist.mean();
        assert!(
            (fitted_mean - ttf_truth.mean()).abs() / ttf_truth.mean() < 0.2,
            "ttf mean {} vs truth {}",
            fitted_mean,
            ttf_truth.mean()
        );
    }

    #[test]
    fn exponential_log_detected() {
        let mut rng = Stream::from_seed(7);
        let log = generate_log(
            "nic",
            200,
            5.0 * 365.0 * DAY,
            &Dist::exponential_mean(100.0 * DAY),
            &Dist::exponential_mean(3600.0),
            &mut rng,
        );
        let seeds = seed_models(&log);
        let best = seeds[0].best_ttf();
        // Exponential data is also Weibull(1)/Gamma(1); accept any of the
        // nested families as long as the fit accepts and the mean is right.
        assert!(best.ks.accepts(0.01), "best fit rejected: {:?}", best.ks);
        assert!((best.dist.mean() - 100.0 * DAY).abs() / (100.0 * DAY) < 0.1);
    }

    #[test]
    fn multiple_components_separated() {
        let mut rng = Stream::from_seed(9);
        let mut log = generate_log(
            "disk",
            100,
            365.0 * DAY,
            &Dist::exponential_mean(30.0 * DAY),
            &Dist::deterministic(3600.0),
            &mut rng,
        );
        log.extend(generate_log(
            "switch",
            20,
            365.0 * DAY,
            &Dist::exponential_mean(200.0 * DAY),
            &Dist::deterministic(7200.0),
            &mut rng,
        ));
        let seeds = seed_models(&log);
        assert_eq!(seeds.len(), 2);
        let names: Vec<&str> = seeds.iter().map(|s| s.component.as_str()).collect();
        assert_eq!(names, vec!["disk", "switch"]);
        // Disk fails ~6-7x more often.
        let disk_mean = seeds[0].best_ttf().dist.mean();
        let switch_mean = seeds[1].best_ttf().dist.mean();
        assert!(switch_mean > 3.0 * disk_mean);
    }

    #[test]
    fn malformed_log_double_failure_sanitized() {
        let log = vec![
            LogRecord {
                component: "disk".into(),
                instance: 0,
                event: LogEvent::Failure,
                at_s: 100.0,
            },
            LogRecord {
                component: "disk".into(),
                instance: 0,
                event: LogEvent::Failure,
                at_s: 150.0, // bogus duplicate
            },
            LogRecord {
                component: "disk".into(),
                instance: 0,
                event: LogEvent::Restored,
                at_s: 200.0,
            },
            LogRecord {
                component: "disk".into(),
                instance: 0,
                event: LogEvent::Failure,
                at_s: 500.0,
            },
        ];
        let seeds = seed_models(&log);
        let s = &seeds[0];
        // TTF samples: 100 (epoch→first) and 300 (200→500). Repair: 100.
        assert_eq!(s.ttf_samples, 2);
        assert_eq!(s.repair_samples, 1);
        // Too few samples to fit → empty fits, no panic.
        assert!(s.repair_fits.is_empty());
        assert!(!s.ttf_fits.is_empty() || s.ttf_samples < 2);
    }

    #[test]
    fn empty_log_empty_seeds() {
        assert!(seed_models(&[]).is_empty());
    }

    #[test]
    fn generated_log_alternates_per_instance() {
        let mut rng = Stream::from_seed(3);
        let log = generate_log(
            "disk",
            5,
            100.0 * DAY,
            &Dist::exponential_mean(10.0 * DAY),
            &Dist::deterministic(3600.0),
            &mut rng,
        );
        for inst in 0..5 {
            let events: Vec<LogEvent> = log
                .iter()
                .filter(|r| r.instance == inst)
                .map(|r| r.event)
                .collect();
            for (i, ev) in events.iter().enumerate() {
                let want = if i % 2 == 0 {
                    LogEvent::Failure
                } else {
                    LogEvent::Restored
                };
                assert_eq!(*ev, want, "instance {inst} event {i}");
            }
        }
    }
}
