//! Offline stand-in for the subset of `parking_lot` this workspace uses:
//! [`Mutex`], [`RwLock`] and [`Condvar`] with panic-free (non-`Result`)
//! lock methods. Backed by `std::sync`; a poisoned lock recovers the
//! inner value, matching parking_lot's behavior of not tracking poison
//! at all (our simulation workers never hold locks across panics on the
//! happy path).

use std::ops::{Deref, DerefMut};
use std::sync::{self, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`]. Wraps the std guard in an `Option` so
/// [`Condvar::wait`] can move it through `std`'s by-value wait without
/// unsafe code; it is `None` only while a wait is in flight.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_deref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_deref_mut().expect("guard present outside wait")
    }
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A condition variable paired with [`Mutex`], parking_lot-style: `wait`
/// borrows the guard mutably instead of consuming it.
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Atomically releases the guard's lock and blocks until notified;
    /// the lock is re-acquired before returning. Subject to spurious
    /// wakeups, so callers re-check their predicate in a loop.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present outside wait");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(|e| e.into_inner()));
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        use std::sync::Arc;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let worker = {
            let pair = Arc::clone(&pair);
            std::thread::spawn(move || {
                let (lock, cvar) = &*pair;
                let mut ready = lock.lock();
                while !*ready {
                    cvar.wait(&mut ready);
                }
                *ready
            })
        };
        {
            let (lock, cvar) = &*pair;
            *lock.lock() = true;
            cvar.notify_all();
        }
        assert!(worker.join().unwrap());
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }
}
