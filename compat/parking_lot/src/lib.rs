//! Offline stand-in for the subset of `parking_lot` this workspace uses:
//! [`Mutex`] and [`RwLock`] with panic-free (non-`Result`) lock methods.
//! Backed by `std::sync`; a poisoned lock panics, matching parking_lot's
//! behavior of not tracking poison at all (our simulation workers never
//! hold locks across panics on the happy path).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }
}
