//! Offline stand-in for the subset of the `bytes` crate this workspace
//! uses: a cheaply-cloneable immutable byte buffer. Clones share one
//! reference-counted allocation, which is the property the erasure-coding
//! paths rely on when fanning shards out to many placements.

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply-cloneable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// A fresh `Vec` with this buffer's contents.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            match b {
                b'"' => write!(f, "\\\"")?,
                b'\\' => write!(f, "\\\\")?,
                0x20..=0x7e => write!(f, "{}", b as char)?,
                _ => write!(f, "\\x{b:02x}")?,
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.0[..] == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self.0[..] == other.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_views() {
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        let v: Bytes = vec![4u8, 5].into();
        assert_eq!(v, vec![4u8, 5]);
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn debug_escapes() {
        let b = Bytes::copy_from_slice(b"a\"\x01");
        assert_eq!(format!("{b:?}"), "b\"a\\\"\\x01\"");
    }
}
