//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! Keeps the statistical machinery out and the API in: benches compile
//! unchanged (`criterion_group!`/`criterion_main!`, `bench_function`,
//! groups, `iter`/`iter_batched`, `Throughput::Bytes`) and run a simple
//! warmup + timed-samples loop, printing mean and best-sample timings
//! (plus throughput when configured) to stdout. No plots, no baselines,
//! no outlier analysis — wall-clock numbers for the EXPERIMENTS.md
//! tables come from the `e*` binaries, not from here.

use std::time::{Duration, Instant};

/// Measurement throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Per-iteration setup cost class; the stand-in times setup outside the
/// measured closure either way, so this only exists for API parity.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small input: real criterion batches many per allocation.
    SmallInput,
    /// Large input: real criterion runs one per batch.
    LargeInput,
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into(), self.sample_size, None, f);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a throughput denominator.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_bench(&full, self.criterion.sample_size, self.throughput, f);
        self
    }

    /// Ends the group (retained for API parity; output is streamed).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure to time the routine.
pub struct Bencher {
    /// Total time spent in the measured routine for this sample.
    elapsed: Duration,
    /// Iterations the routine ran for this sample.
    iters: u64,
}

impl Bencher {
    /// Times `routine`, called in a loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over fresh inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // Calibrate: grow the iteration count until one sample takes ≥ ~5 ms,
    // so per-call timer overhead stays negligible for fast routines.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
            break;
        }
        iters *= 2;
    }

    let mut per_iter: Vec<f64> = (0..sample_size)
        .map(|_| {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iters,
            };
            f(&mut b);
            b.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));

    let best = per_iter[0];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let mut line = format!(
        "{id:<45} mean {:>12}  best {:>12}  ({} samples x {iters} iters)",
        fmt_time(mean),
        fmt_time(best),
        per_iter.len()
    );
    if let Some(Throughput::Bytes(bytes)) = throughput {
        let rate = bytes as f64 / mean;
        line.push_str(&format!("  {:.1} MiB/s", rate / (1024.0 * 1024.0)));
    }
    if let Some(Throughput::Elements(n)) = throughput {
        line.push_str(&format!("  {:.0} elem/s", n as f64 / mean));
    }
    println!("{line}");
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a benchmark group: either `criterion_group!(name, fn_a, fn_b)`
/// or the long form with `name = ...; config = ...; targets = ...`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("noop_add", |b| b.iter(|| 1u64 + 1));
        let mut g = c.benchmark_group("grouped");
        g.throughput(Throughput::Bytes(8));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 8], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = quick
    }

    #[test]
    fn harness_runs() {
        benches();
    }
}
