//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Same surface — `proptest! { #[test] fn f(x in strategy) { ... } }`,
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, `prop_oneof!`,
//! `any::<T>()`, integer/float range strategies, tuple strategies,
//! `collection::vec`, `prop_map`, and simple `"[a-z]{1,12}"` string
//! patterns — but a much simpler runner: each test draws a fixed number
//! of cases from an RNG seeded by the test's module path, so runs are
//! deterministic across machines. No shrinking and no regression-file
//! persistence; a failing case panics with the ordinary assert message,
//! and re-running reproduces it because the seed is the test name.

pub mod strategy;
pub mod test_runner;

pub use test_runner::ProptestConfig;

pub mod collection {
    //! Strategies for collections (only `vec` is provided).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Yields vectors whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.end > size.start, "empty size range for vec strategy");
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*`.
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(binding in strategy, ...) { body }`
/// becomes a `#[test]` that evaluates the body for `config.cases` drawn
/// inputs. An optional leading `#![proptest_config(...)]` overrides the
/// case count.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for _case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    // The body runs inside a closure so `prop_assume!`
                    // can skip a case with an early return.
                    #[allow(unused_mut)]
                    let mut body = move || $body;
                    body();
                }
            }
        )*
    };
}

/// Asserts a property holds for the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts two values are equal for the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return;
        }
    };
}

/// Picks uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::boxed_strategy($strategy)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in -5i64..5, f in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn assume_skips(n in 0usize..10) {
            prop_assume!(n >= 5);
            prop_assert!(n >= 5);
        }

        #[test]
        fn vec_and_tuple_strategies(
            v in crate::collection::vec((any::<bool>(), 0u32..100), 2..9)
        ) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!(v.iter().all(|(_, x)| *x < 100));
        }

        #[test]
        fn string_pattern(s in "[a-z]{1,12}") {
            prop_assert!(!s.is_empty() && s.len() <= 12);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }

        #[test]
        fn oneof_and_map(x in prop_oneof![
            (0u32..10).prop_map(|v| v as u64),
            (100u32..110).prop_map(|v| v as u64),
        ]) {
            prop_assert!(x < 10 || (100..110).contains(&x));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let draw = || {
            let mut rng = crate::test_runner::TestRng::for_test("fixed-name");
            (0..16)
                .map(|_| (0u64..1000).generate(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(), draw());
    }
}
