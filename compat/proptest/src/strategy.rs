//! Value-generation strategies: ranges, `any`, tuples, mapping,
//! unions, and simple string patterns.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::Range;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy yields.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy applying `f` to each drawn value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "whole domain" strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T`'s whole domain.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// See [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values spanning many magnitudes, sign included.
        let mag = rng.unit_f64() * 2.0 - 1.0;
        let exp = rng.below(61) as i32 - 30;
        mag * 2f64.powi(exp)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(hi > lo, "empty range strategy");
                (lo + rng.below((hi - lo) as u64) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
    (A: 0, B: 1, C: 2, D: 3, E: 4);
}

/// Picks uniformly among boxed strategies; built by `prop_oneof!`.
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// A union over `options` (must be non-empty).
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

/// Boxes a strategy for storage in a [`Union`].
pub fn boxed_strategy<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

// ---------------------------------------------------------------------------
// String patterns
// ---------------------------------------------------------------------------

/// `&str` is a strategy generating strings from a small regex subset:
/// concatenations of literal characters and `[a-z0-9_]`-style classes,
/// each optionally quantified with `{n}`, `{m,n}`, `?`, `+`, or `*`
/// (the open-ended quantifiers cap at 8 repetitions).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let n = atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize;
            for _ in 0..n {
                let idx = rng.below(atom.chars.len() as u64) as usize;
                out.push(atom.chars[idx]);
            }
        }
        out
    }
}

struct Atom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut atoms = Vec::new();
    while i < chars.len() {
        let alphabet = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed '[' in pattern {pattern:?}"));
                let class = parse_class(&chars[i + 1..close], pattern);
                i = close + 1;
                class
            }
            '\\' => {
                i += 1;
                let c = *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling '\\' in pattern {pattern:?}"));
                i += 1;
                vec![c]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed '{{' in pattern {pattern:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad quantifier"),
                        hi.trim().parse().expect("bad quantifier"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("bad quantifier");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            _ => (1, 1),
        };
        assert!(max >= min, "bad quantifier in pattern {pattern:?}");
        atoms.push(Atom {
            chars: alphabet,
            min,
            max,
        });
    }
    atoms
}

fn parse_class(body: &[char], pattern: &str) -> Vec<char> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if i + 2 < body.len() && body[i + 1] == '-' {
            let (lo, hi) = (body[i] as u32, body[i + 2] as u32);
            assert!(hi >= lo, "bad class range in pattern {pattern:?}");
            for c in lo..=hi {
                out.push(char::from_u32(c).expect("bad class range"));
            }
            i += 3;
        } else {
            out.push(body[i]);
            i += 1;
        }
    }
    assert!(
        !out.is_empty(),
        "empty character class in pattern {pattern:?}"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_parsing() {
        assert_eq!(parse_class(&['a', '-', 'c'], "p"), vec!['a', 'b', 'c']);
        assert_eq!(
            parse_class(&['x', 'a', '-', 'b', '_'], "p"),
            vec!['x', 'a', 'b', '_']
        );
    }

    #[test]
    fn pattern_shapes() {
        let mut rng = TestRng::for_test("pattern_shapes");
        let s = "[a-z]{1,12}".generate(&mut rng);
        assert!((1..=12).contains(&s.len()));
        let t = "ab?c+".generate(&mut rng);
        assert!(t.starts_with('a'));
        assert!(t.ends_with('c'));
    }
}
