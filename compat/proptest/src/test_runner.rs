//! The (deliberately small) test runner: per-test deterministic RNG and
//! the case-count configuration.

/// Controls how many cases each property test draws.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of input cases evaluated per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 64 keeps the heavier simulation
        // properties fast while still exercising a spread of inputs.
        ProptestConfig { cases: 64 }
    }
}

/// A splitmix64 generator seeded from the test's fully-qualified name, so
/// every run of a given test replays the same case sequence.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for the test named `name` (use `module_path!() :: fn-name`).
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name, then one splitmix round to spread it.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit draw (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; `n = 0` yields 0.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        // Multiply-shift bounded draw; bias is negligible for test inputs.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_in_range_and_seeded_by_name() {
        let mut a = TestRng::for_test("a");
        let mut b = TestRng::for_test("b");
        assert_ne!(a.next_u64(), b.next_u64());
        for n in [1u64, 2, 7, 1000] {
            assert!(a.below(n) < n);
        }
        let u = a.unit_f64();
        assert!((0.0..1.0).contains(&u));
    }
}
