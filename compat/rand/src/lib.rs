//! Offline stand-in for the subset of the `rand` crate this workspace
//! uses. The build environment has no network access to crates.io, so the
//! workspace vendors the trait surface it needs; the actual generators
//! (xoshiro256++ etc.) are implemented in `wt-des::rng`, which only needs
//! the [`RngCore`] trait to interoperate.

/// The core of a random number generator: raw integer output plus byte
/// filling. Mirrors `rand::RngCore`.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Convenience extension methods over [`RngCore`], mirroring the tiny part
/// of `rand::Rng` that simulation code tends to reach for.
pub trait Rng: RngCore {
    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn random_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `bool`.
    fn random_bool_even(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest.iter_mut() {
                *b = self.next_u64() as u8;
            }
        }
    }

    #[test]
    fn trait_object_and_ext_methods_work() {
        let mut g = Lcg(42);
        let u = g.random_f64();
        assert!((0.0..1.0).contains(&u));
        let mut buf = [0u8; 7];
        g.fill_bytes(&mut buf);
        let r: &mut dyn RngCore = &mut g;
        let _ = r.next_u32();
    }
}
