//! Offline stand-in for the subset of `serde_json` this workspace uses:
//! [`to_string`], [`to_string_pretty`], and [`from_str`], bridging the
//! vendored serde's owned [`Value`] data model to JSON text.
//!
//! Formatting matches real serde_json where the result store depends on
//! it: floats that are mathematically integral print with a trailing
//! `.0` (so `f64` fields survive a write/read cycle as floats), strings
//! escape control characters as `\u00XX`, and struct fields keep
//! declaration order. Non-finite floats serialize as `null`, which is
//! serde_json's lossy default too.

use serde::{Deserialize, Error as SerdeError, Serialize, Value};
use std::fmt;

/// A serialization or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<SerdeError> for Error {
    fn from(e: SerdeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value).map_err(Error::from)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(x) => out.push_str(&x.to_string()),
        Value::UInt(x) => out.push_str(&x.to_string()),
        Value::Float(x) => write_float(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_sep(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            write_sep(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_sep(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            write_sep(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_sep(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_float(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e16 {
        // Keep the value recognizably a float on the wire, as serde_json does.
        out.push_str(&format!("{x:.1}"));
    } else {
        out.push_str(&format!("{x}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser (recursive descent)
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {} in JSON input",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of JSON input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::new(format!(
                "unexpected character '{}' at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string in JSON input"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape in JSON input"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape '\\{}' in JSON string",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Re-decode multi-byte UTF-8 from the source slice.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error::new("truncated UTF-8 in JSON string"))?;
                    let s = std::str::from_utf8(chunk)
                        .map_err(|_| Error::new("invalid UTF-8 in JSON string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number '{text}'")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            // "-0" parses as Int(0); fine, both deserialize identically.
            stripped
                .parse::<u64>()
                .map(|x| Value::Int(-(x as i64)))
                .map_err(|_| Error::new(format!("invalid number '{text}'")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::new(format!("invalid number '{text}'")))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        let x: f64 = from_str("2.0").unwrap();
        assert_eq!(x, 2.0);
        let y: i64 = from_str("-7").unwrap();
        assert_eq!(y, -7);
    }

    #[test]
    fn strings_escape_and_parse() {
        let s = "a\"b\\c\nd\u{1}é漢".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(json, "\"a\\\"b\\\\c\\nd\\u0001é漢\"");
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u64, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        let back: Vec<u64> = from_str(&json).unwrap();
        assert_eq!(back, v);

        let json = to_string(&Vec::<u64>::new()).unwrap();
        assert_eq!(json, "[]");

        let mut m = std::collections::BTreeMap::new();
        m.insert("a".to_string(), 1.5f64);
        let json = to_string(&m).unwrap();
        assert_eq!(json, "{\"a\":1.5}");
        let back: std::collections::BTreeMap<String, f64> = from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn pretty_indents() {
        let v = vec![1u64];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1\n]");
    }

    #[test]
    fn whitespace_and_errors() {
        let back: Vec<u64> = from_str(" [ 1 , 2 ] ").unwrap();
        assert_eq!(back, vec![1, 2]);
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<Vec<u64>>("[1,]").is_err());
    }
}
