//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! The real serde couples a zero-copy visitor data model with
//! format-agnostic derive macros; this vendored replacement collapses the
//! data model to an owned [`Value`] tree (the miniserde approach), which is
//! all the wind tunnel needs: every serialized type here is a small
//! configuration or result struct bound for JSON in the result store.
//!
//! `#[derive(Serialize, Deserialize)]` is provided by the sibling
//! `serde_derive` proc-macro crate and re-exported here under the usual
//! names, so user code (`use serde::{Deserialize, Serialize};`) compiles
//! unchanged. Supported shapes: named-field structs, newtype/tuple
//! structs, and enums with unit/tuple/struct variants in serde's default
//! externally-tagged representation, plus `#[serde(untagged)]`.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// The self-describing data model every type serializes into.
///
/// Integers keep their signedness ([`Value::Int`] vs [`Value::UInt`]) so
/// that `u64` seeds round-trip exactly; floats are a separate arm so the
/// JSON layer can format them with `.0` suffixes the way serde_json does.
/// Objects preserve insertion order (struct declaration order), matching
/// serde_json's default struct output.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// A negative integer (non-negative integers parse as [`Value::UInt`]).
    Int(i64),
    /// A non-negative integer.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; pairs keep insertion order.
    Object(Vec<(String, Value)>),
}

/// The shared `null`, returned for absent object fields so `Option` fields
/// can deserialize missing keys as `None`.
pub static NULL: Value = Value::Null;

impl Value {
    /// Object field lookup by key (linear; objects here are tiny).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Looks up `name` among object `fields`, yielding the shared [`NULL`]
/// when absent — derive-generated struct deserializers call this so that
/// missing `Option` fields read back as `None`.
pub fn field<'a>(fields: &'a [(String, Value)], name: &str) -> &'a Value {
    fields
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .unwrap_or(&NULL)
}

/// A deserialization error with a human-readable path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error with the given message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }

    /// Wraps `inner` with the field it occurred in.
    pub fn in_field(name: &str, inner: Error) -> Self {
        Error {
            msg: format!("{name}: {}", inner.msg),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// A type that can convert itself into the [`Value`] data model.
pub trait Serialize {
    /// This value as a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// A type that can reconstruct itself from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Parses a [`Value`] tree into `Self`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw: u64 = match v {
                    Value::UInt(x) => *x,
                    Value::Int(x) if *x >= 0 => *x as u64,
                    Value::Float(x) if x.fract() == 0.0 && *x >= 0.0 && *x <= u64::MAX as f64 => {
                        *x as u64
                    }
                    other => {
                        return Err(Error::custom(format!(
                            "expected unsigned integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = *self as i64;
                if x >= 0 { Value::UInt(x as u64) } else { Value::Int(x) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw: i64 = match v {
                    Value::Int(x) => *x,
                    Value::UInt(x) if *x <= i64::MAX as u64 => *x as i64,
                    Value::Float(x) if x.fract() == 0.0 && x.abs() <= i64::MAX as f64 => *x as i64,
                    other => {
                        return Err(Error::custom(format!(
                            "expected integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(x) => Ok(*x as $t),
                    Value::UInt(x) => Ok(*x as $t),
                    Value::Int(x) => Ok(*x as $t),
                    other => Err(Error::custom(format!("expected number, got {other:?}"))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::custom(format!(
                "expected 1-char string, got {other:?}"
            ))),
        }
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of {N}, got {n}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                let items = v
                    .as_array()
                    .ok_or_else(|| Error::custom(format!("expected array, got {v:?}")))?;
                if items.len() != LEN {
                    return Err(Error::custom(format!(
                        "expected {LEN}-tuple, got {} elements",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::custom(format!("expected object, got {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output, like serde_json with a BTreeMap.
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::custom(format!("expected object, got {other:?}"))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn numeric_cross_width() {
        // A JSON integer deserializes into f64, and an integral float into u64.
        assert_eq!(f64::from_value(&Value::UInt(3)).unwrap(), 3.0);
        assert_eq!(u64::from_value(&Value::Float(3.0)).unwrap(), 3);
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(u64::from_value(&Value::Float(1.5)).is_err());
    }

    #[test]
    fn option_handles_null_and_missing() {
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_value(&Value::UInt(1)).unwrap(), Some(1));
        let fields = vec![("a".to_string(), Value::UInt(1))];
        assert_eq!(field(&fields, "missing"), &Value::Null);
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1.5f64, "x".to_string()), (2.5, "y".to_string())];
        let back: Vec<(f64, String)> = Deserialize::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);

        let mut m = BTreeMap::new();
        m.insert("k".to_string(), 9u64);
        let back: BTreeMap<String, u64> = Deserialize::from_value(&m.to_value()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn untagged_style_dispatch() {
        // The property ParamValue's untagged repr relies on: numbers,
        // strings and bools are mutually exclusive at the Value layer.
        assert!(f64::from_value(&Value::Bool(true)).is_err());
        assert!(f64::from_value(&Value::Str("3".into())).is_err());
        assert!(bool::from_value(&Value::UInt(1)).is_err());
        assert!(String::from_value(&Value::Bool(false)).is_err());
    }
}
