//! `#[derive(Serialize, Deserialize)]` for the vendored serde stand-in.
//!
//! Implemented directly on `proc_macro::TokenTree` (no syn/quote — the
//! build must work with an empty registry cache). The parser only needs
//! the *shape* of the item — field names and arities — because generated
//! code leans on type inference: `Deserialize::from_value(...)` in a
//! struct-literal position resolves the field type without ever spelling
//! it, which sidesteps type re-tokenization entirely.
//!
//! Supported shapes: named-field structs, tuple/newtype structs, enums
//! with unit/tuple/struct variants (serde's externally-tagged layout:
//! unit → `"Variant"`, payload → `{"Variant": ...}`), and
//! `#[serde(untagged)]` enums (variants tried in declaration order).
//! Generic items are rejected; other `#[serde(...)]` attributes are
//! ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Input {
    name: String,
    untagged: bool,
    kind: Kind,
}

enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Shape {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    gen_serialize(&input)
        .parse()
        .expect("serde_derive generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    gen_deserialize(&input)
        .parse()
        .expect("serde_derive generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_input(ts: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = 0;
    let mut untagged = false;

    while is_punct(tokens.get(i), '#') {
        if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
            untagged |= attr_is_serde_untagged(g);
        }
        i += 2;
    }
    i = skip_visibility(&tokens, i);

    let kw = expect_ident(&tokens, i);
    let name = expect_ident(&tokens, i + 1);
    i += 2;
    if is_punct(tokens.get(i), '<') {
        panic!("serde stand-in derive does not support generic type `{name}`");
    }

    let kind = match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            _ => Kind::UnitStruct,
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            _ => panic!("enum `{name}` has no body"),
        },
        other => panic!("cannot derive serde traits for `{other} {name}`"),
    };

    Input {
        name,
        untagged,
        kind,
    }
}

fn is_punct(t: Option<&TokenTree>, ch: char) -> bool {
    matches!(t, Some(TokenTree::Punct(p)) if p.as_char() == ch)
}

fn expect_ident(tokens: &[TokenTree], i: usize) -> String {
    match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected identifier, found {other:?}"),
    }
}

fn skip_visibility(tokens: &[TokenTree], mut i: usize) -> usize {
    if matches!(tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        i += 1;
        if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    i
}

fn attr_is_serde_untagged(g: &proc_macro::Group) -> bool {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    match (toks.first(), toks.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(inner)))
            if id.to_string() == "serde" =>
        {
            inner
                .stream()
                .into_iter()
                .any(|t| matches!(t, TokenTree::Ident(ref w) if w.to_string() == "untagged"))
        }
        _ => false,
    }
}

fn parse_named_fields(ts: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = 0;
    let mut names = Vec::new();
    loop {
        while is_punct(tokens.get(i), '#') {
            i += 2;
        }
        i = skip_visibility(&tokens, i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        names.push(id.to_string());
        i += 2; // name and ':'

        // Skip the type: everything up to a comma outside angle brackets.
        let mut depth = 0i32;
        while let Some(t) = tokens.get(i) {
            i += 1;
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
        }
    }
    names
}

fn count_tuple_fields(ts: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut count = 0usize;
    let mut in_segment = false;
    for t in ts {
        match t {
            TokenTree::Punct(ref p) if p.as_char() == '<' => {
                depth += 1;
                in_segment = true;
            }
            TokenTree::Punct(ref p) if p.as_char() == '>' => {
                depth -= 1;
                in_segment = true;
            }
            TokenTree::Punct(ref p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                in_segment = false;
            }
            _ => in_segment = true,
        }
    }
    if in_segment {
        count + 1
    } else {
        count
    }
}

fn parse_variants(ts: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    loop {
        while is_punct(tokens.get(i), '#') {
            i += 2;
        }
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Struct(parse_named_fields(g.stream()))
            }
            _ => Shape::Unit,
        };
        variants.push(Variant { name, shape });
        // Consume through the trailing comma (also skips `= discriminant`).
        while let Some(t) = tokens.get(i) {
            i += 1;
            if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
    }
    variants
}

/// The key a field/variant serializes under (raw identifiers drop `r#`).
fn json_name(ident: &str) -> &str {
    ident.strip_prefix("r#").unwrap_or(ident)
}

// ---------------------------------------------------------------------------
// Serialize codegen
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::NamedStruct(fields) => {
            let pairs: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(String::from(\"{}\"), ::serde::Serialize::to_value(&self.{f})),",
                        json_name(f)
                    )
                })
                .collect();
            format!("::serde::Value::Object(vec![{pairs}])")
        }
        Kind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: String = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!("::serde::Value::Array(vec![{items}])")
        }
        Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| serialize_arm(name, v, input.untagged))
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn serialize_arm(name: &str, v: &Variant, untagged: bool) -> String {
    let vn = &v.name;
    let tag = json_name(vn);
    let wrap = |inner: String| {
        if untagged {
            inner
        } else {
            format!("::serde::Value::Object(vec![(String::from(\"{tag}\"), {inner})])")
        }
    };
    match &v.shape {
        Shape::Unit => {
            let payload = if untagged {
                "::serde::Value::Null".to_string()
            } else {
                format!("::serde::Value::Str(String::from(\"{tag}\"))")
            };
            format!("{name}::{vn} => {payload},")
        }
        Shape::Tuple(1) => {
            let payload = wrap("::serde::Serialize::to_value(f0)".to_string());
            format!("{name}::{vn}(f0) => {payload},")
        }
        Shape::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
            let items: String = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(f{i}),"))
                .collect();
            let payload = wrap(format!("::serde::Value::Array(vec![{items}])"));
            format!("{name}::{vn}({}) => {payload},", binds.join(", "))
        }
        Shape::Struct(fields) => {
            let pairs: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(String::from(\"{}\"), ::serde::Serialize::to_value({f})),",
                        json_name(f)
                    )
                })
                .collect();
            let payload = wrap(format!("::serde::Value::Object(vec![{pairs}])"));
            format!("{name}::{vn} {{ {} }} => {payload},", fields.join(", "))
        }
    }
}

// ---------------------------------------------------------------------------
// Deserialize codegen
// ---------------------------------------------------------------------------

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::NamedStruct(fields) => named_struct_body(name, name, fields, "v"),
        Kind::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Kind::TupleStruct(n) => tuple_body(name, name, *n, "v"),
        Kind::UnitStruct => format!(
            "match v {{ ::serde::Value::Null => Ok({name}), \
             other => Err(::serde::Error::custom(format!(\
             \"expected null for unit struct {name}, got {{other:?}}\"))) }}"
        ),
        Kind::Enum(variants) if input.untagged => untagged_enum_body(name, variants),
        Kind::Enum(variants) => tagged_enum_body(name, variants),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
}

/// A `Result<Self, Error>` expression parsing `src` (a `&Value` binding)
/// into a named-field struct or struct variant `ctor`.
fn named_struct_body(type_name: &str, ctor: &str, fields: &[String], src: &str) -> String {
    let inits: String = fields
        .iter()
        .map(|f| {
            let key = json_name(f);
            format!(
                "{f}: ::serde::Deserialize::from_value(::serde::field(flds, \"{key}\"))\
                 .map_err(|e| ::serde::Error::in_field(\"{key}\", e))?,"
            )
        })
        .collect();
    format!(
        "{{ let flds = match {src}.as_object() {{ \
           Some(f) => f, \
           None => return Err(::serde::Error::custom(format!(\
             \"expected object for {type_name}, got {{:?}}\", {src}))), \
         }}; \
         Ok({ctor} {{ {inits} }}) }}"
    )
}

/// A `Result<Self, Error>` expression parsing `src` into a tuple struct or
/// tuple variant `ctor` of arity `n`.
fn tuple_body(type_name: &str, ctor: &str, n: usize, src: &str) -> String {
    let inits: String = (0..n)
        .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?,"))
        .collect();
    format!(
        "{{ let items = match {src}.as_array() {{ \
           Some(a) => a, \
           None => return Err(::serde::Error::custom(format!(\
             \"expected array for {type_name}, got {{:?}}\", {src}))), \
         }}; \
         if items.len() != {n} {{ \
           return Err(::serde::Error::custom(format!(\
             \"expected {n} elements for {type_name}, got {{}}\", items.len()))); \
         }} \
         Ok({ctor}({inits})) }}"
    )
}

/// A `Result<Self, Error>` expression parsing `src` as variant `v`'s
/// payload (the value under the external tag, or the whole value when
/// untagged).
fn variant_payload(name: &str, v: &Variant, src: &str) -> String {
    let ctor = format!("{name}::{}", v.name);
    match &v.shape {
        Shape::Unit => format!(
            "match {src} {{ ::serde::Value::Null => Ok({ctor}), \
             other => Err(::serde::Error::custom(format!(\
             \"expected null payload for {ctor}, got {{other:?}}\"))) }}"
        ),
        Shape::Tuple(1) => format!("Ok({ctor}(::serde::Deserialize::from_value({src})?))"),
        Shape::Tuple(n) => tuple_body(&ctor, &ctor, *n, src),
        Shape::Struct(fields) => named_struct_body(&ctor, &ctor, fields, src),
    }
}

fn tagged_enum_body(name: &str, variants: &[Variant]) -> String {
    let unit_arms: String = variants
        .iter()
        .filter(|v| matches!(v.shape, Shape::Unit))
        .map(|v| format!("\"{}\" => Ok({name}::{}),", json_name(&v.name), v.name))
        .collect();
    let str_arm = if unit_arms.is_empty() {
        format!(
            "::serde::Value::Str(s) => Err(::serde::Error::custom(format!(\
             \"unknown variant {{s}} for {name}\"))),"
        )
    } else {
        format!(
            "::serde::Value::Str(s) => match s.as_str() {{ {unit_arms} \
             other => Err(::serde::Error::custom(format!(\
             \"unknown variant {{other}} for {name}\"))), }},"
        )
    };

    let payload_arms: String = variants
        .iter()
        .filter(|v| !matches!(v.shape, Shape::Unit))
        .map(|v| {
            format!(
                "\"{}\" => {},",
                json_name(&v.name),
                variant_payload(name, v, "payload")
            )
        })
        .collect();
    let obj_arm = if payload_arms.is_empty() {
        String::new()
    } else {
        format!(
            "::serde::Value::Object(flds) if flds.len() == 1 => {{ \
               let (tag, payload) = &flds[0]; \
               match tag.as_str() {{ {payload_arms} \
                 other => Err(::serde::Error::custom(format!(\
                 \"unknown variant {{other}} for {name}\"))), }} }},"
        )
    };

    format!(
        "match v {{ {str_arm} {obj_arm} \
         other => Err(::serde::Error::custom(format!(\
         \"expected variant of {name}, got {{other:?}}\"))), }}"
    )
}

fn untagged_enum_body(name: &str, variants: &[Variant]) -> String {
    let attempts: String = variants
        .iter()
        .map(|v| {
            format!(
                "if let Ok(x) = (|| -> Result<Self, ::serde::Error> {{ {} }})() \
                 {{ return Ok(x); }}",
                variant_payload(name, v, "v")
            )
        })
        .collect();
    format!(
        "{{ {attempts} \
         Err(::serde::Error::custom(format!(\
         \"no variant of untagged {name} matched {{:?}}\", v))) }}"
    )
}
