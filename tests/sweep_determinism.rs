//! Integration: the sweep layer's two determinism contracts.
//!
//! 1. A [`SweepSpec`] grid is a function of *what* is swept, never of
//!    how the axes were declared: permuting the axis declaration order
//!    (or appending values to an axis) must not move or reseed any
//!    existing point.
//! 2. A [`SweepRunner`] execution — aggregated rows *and* the records
//!    landed in the result store — is bitwise identical at 1, 4, and 8
//!    workers.

use proptest::prelude::*;
use windtunnel::farm::Farm;
use windtunnel::store::SharedStore;
use windtunnel::sweep::{MetricAgg, SweepOutcome, SweepRunner, SweepSpec};

/// Three axes with value counts drawn by the property, declared in the
/// order `perm` selects.
fn spec_with_order(seed: u64, na: usize, nb: usize, nc: usize, perm: usize) -> SweepSpec {
    let mut spec = SweepSpec::new("prop").seed(seed);
    // Declaration order is one of the 6 permutations of (alpha, beta,
    // gamma); the canonical grid must not depend on which.
    let order: [usize; 3] = [
        [0, 1, 2],
        [0, 2, 1],
        [1, 0, 2],
        [1, 2, 0],
        [2, 0, 1],
        [2, 1, 0],
    ][perm % 6];
    for axis in order {
        spec = match axis {
            0 => spec.axis("alpha", (0..na).map(|i| i as f64 * 1.5)),
            1 => spec.axis("beta", (0..nb).map(|i| format!("v{i}"))),
            _ => spec.axis("gamma", (0..nc).map(|i| i % 2 == 0)),
        };
    }
    spec
}

proptest! {
    #[test]
    fn grid_ignores_axis_declaration_order(
        seed in any::<u64>(),
        na in 1usize..5,
        nb in 1usize..5,
        nc in 1usize..3,
        perm in 0usize..6,
    ) {
        let canonical = spec_with_order(seed, na, nb, nc, 0).grid();
        let permuted = spec_with_order(seed, na, nb, nc, perm).grid();
        prop_assert_eq!(canonical.points.len(), permuted.points.len());
        for (a, b) in canonical.points.iter().zip(&permuted.points) {
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn point_seeds_survive_axis_extension(
        seed in any::<u64>(),
        na in 1usize..4,
        extra in 1usize..4,
    ) {
        // Appending values to an axis must not reseed the points that
        // were already in the grid: seeds are content-derived, not
        // position-derived.
        let small = spec_with_order(seed, na, 2, 1, 0).grid();
        let grown = spec_with_order(seed, na + extra, 2, 1, 0).grid();
        for p in &small.points {
            let twin = grown
                .points
                .iter()
                .find(|q| q.assignment == p.assignment)
                .expect("existing configuration still present after extension");
            prop_assert_eq!(twin.seed, p.seed);
        }
    }
}

#[test]
fn sweep_run_identical_across_worker_counts() {
    let spec = || {
        SweepSpec::new("workers")
            .axis("x", [1.0, 2.0, 3.0])
            .axis("mode", ["a", "b"])
            .seed(2014)
            .replications(3)
            .aggregate("hits", MetricAgg::Sum)
    };
    let run = |workers: usize| {
        let store = SharedStore::new();
        let out = SweepRunner::new(Farm::new(workers)).run(&spec(), &store, |point, rep, sink| {
            // Seed-dependent metrics: any reseeding or reordering under
            // parallelism changes the values, not just their order.
            let v = (rep.seed % 1000) as f64 * point.axis_num("x");
            sink.record(point.record("workers", rep.seed).metric("v", v));
            [("v".to_string(), v), ("hits".to_string(), 1.0)].into()
        });
        (out, store.snapshot())
    };
    let (out1, snap1) = run(1);
    let rows = |o: &SweepOutcome| {
        o.rows
            .iter()
            .map(|r| (r.point.clone(), r.metrics.clone()))
            .collect::<Vec<_>>()
    };
    assert_eq!(out1.rows.len(), 6);
    for workers in [4, 8] {
        let (out_n, snap_n) = run(workers);
        assert_eq!(
            rows(&out1),
            rows(&out_n),
            "sweep rows diverged at {workers} workers"
        );
        assert_eq!(
            snap1, snap_n,
            "recorded store diverged at {workers} workers"
        );
    }
}
