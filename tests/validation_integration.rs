//! Integration: the §4.3 validation loop — DES vs closed forms — wired
//! through the public crate APIs (a compact version of experiment E5).

use wt_analytic::{Mg1, Mm1, RepairableReplicas};
use wt_bench::queuesim::QueueSim;
use wt_cluster::{AvailabilityModel, RebuildModel};
use wt_des::time::SimDuration;
use wt_des::QueueBackend;
use wt_dist::Dist;
use wt_sw::{Placement, RedundancyScheme, RepairPolicy};

const DAY: f64 = 86_400.0;

#[test]
fn queue_simulator_matches_mm1() {
    let sim = QueueSim {
        interarrival: Dist::exponential(5.0),
        service: Dist::exponential(8.0),
        servers: 1,
    };
    let stats = sim.run(150_000, 71);
    let formula = Mm1::new(5.0, 8.0);
    assert!(
        (stats.wq - formula.wq()).abs() / formula.wq() < 0.08,
        "sim {} vs formula {}",
        stats.wq,
        formula.wq()
    );
    assert!((stats.rho - formula.rho()).abs() < 0.02);
}

#[test]
fn queue_simulator_matches_pollaczek_khinchine_heavy_tail() {
    // The paper's §2.2 point in reverse: the simulator handles the heavy
    // tail, and where a formula exists (M/G/1) they agree.
    let service = Dist::lognormal_mean_cv(0.1, 2.0);
    let sim = QueueSim {
        interarrival: Dist::exponential(5.0),
        service: service.clone(),
        servers: 1,
    };
    let stats = sim.run(400_000, 72);
    let formula = Mg1::new(5.0, service);
    assert!(
        (stats.wq - formula.wq()).abs() / formula.wq() < 0.15,
        "sim {} vs P-K {}",
        stats.wq,
        formula.wq()
    );
}

#[test]
fn availability_engine_brackets_markov_prediction() {
    const LAMBDA: f64 = 1.0 / (30.0 * DAY);
    const MU: f64 = 1.0 / DAY;
    let model = AvailabilityModel {
        n_nodes: 10,
        redundancy: RedundancyScheme::replication(5),
        placement: Placement::Random,
        objects: 1,
        object_bytes: 1,
        node_ttf: Dist::exponential(LAMBDA),
        node_replace: Dist::deterministic(1.0),
        rebuild: RebuildModel::Timed(Dist::exponential(MU)),
        repair: RepairPolicy {
            max_parallel: 1024,
            bandwidth_share: 1.0,
            detection_delay_s: 0.0,
        },
        switches: None,
        disks: None,
        queue: QueueBackend::Heap,
        chaos: None,
    };
    let mut avail = 0.0;
    let reps = 6;
    for seed in 0..reps {
        avail += model.run(seed, SimDuration::from_years(30.0)).availability;
    }
    avail /= reps as f64;
    let markov = RepairableReplicas::new(5, LAMBDA, MU, true).availability(3);
    let (sim_u, markov_u) = (1.0 - avail, 1.0 - markov);
    assert!(
        (sim_u - markov_u).abs() < 0.6 * markov_u,
        "sim unavailability {sim_u:.2e} vs Markov {markov_u:.2e}"
    );
}
