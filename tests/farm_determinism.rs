//! Integration: the run farm produces byte-identical results regardless
//! of worker count — the property that makes parallel experiment sweeps
//! reproducible.

use windtunnel::farm::Farm;
use windtunnel::sweep::SweepRunner;
use wt_bench::fig1::{compute, Fig1Config};

#[test]
fn fig1_smallest_series_identical_across_worker_counts() {
    let config = Fig1Config::smallest();
    let serial = compute(&config, &SweepRunner::new(Farm::new(1)));
    let table_1 = serial.table().render();
    let csv_1 = serial.csv();
    for workers in [4, 8] {
        let parallel = compute(&config, &SweepRunner::new(Farm::new(workers)));
        assert_eq!(
            serial.curves, parallel.curves,
            "raw curves diverged at {workers} workers"
        );
        assert_eq!(
            table_1,
            parallel.table().render(),
            "rendered table diverged at {workers} workers"
        );
        assert_eq!(
            csv_1,
            parallel.csv(),
            "full-precision CSV diverged at {workers} workers"
        );
    }
}

#[test]
fn farm_fold_deterministic_under_load() {
    // A fold whose result depends on observation order: catches any
    // regression where results reach the accumulator out of item order.
    let items: Vec<u64> = (0..400).collect();
    let digest = |workers: usize| {
        Farm::new(workers).run_fold(
            2014,
            &items,
            |&x, ctx| ctx.seed.wrapping_mul(x | 1),
            0u64,
            |acc, _idx, r| acc.rotate_left(7) ^ r,
        )
    };
    let gold = digest(1);
    for workers in [2, 4, 8] {
        assert_eq!(
            digest(workers),
            gold,
            "digest diverged at {workers} workers"
        );
    }
}
