//! Integration: the Figure 1 experiment end-to-end, asserting the
//! qualitative relationships the paper's figure shows.

use wt_cluster::UnavailabilityExperiment;
use wt_sw::Placement;

fn exp(n_nodes: usize, n: usize, placement: Placement) -> UnavailabilityExperiment {
    UnavailabilityExperiment {
        trials: 500,
        ..UnavailabilityExperiment::figure1(n_nodes, 10_000, n, placement, 2014)
    }
}

#[test]
fn figure1_qualitative_shape() {
    // n = 5 strictly more resilient than n = 3 at the crossover point.
    let r3 = exp(10, 3, Placement::Random).run_at(2).p_unavailable;
    let r5 = exp(10, 5, Placement::Random).run_at(2).p_unavailable;
    assert!(r5 < r3, "n=5 ({r5}) should beat n=3 ({r3}) at f=2");

    // Random >= RoundRobin for the same (n, N).
    let rand = exp(30, 3, Placement::Random).run_at(4).p_unavailable;
    let rr = exp(30, 3, Placement::RoundRobin).run_at(4).p_unavailable;
    assert!(rand >= rr, "Random ({rand}) >= RoundRobin ({rr})");

    // Smaller cluster saturates sooner under RoundRobin.
    let rr10 = exp(10, 3, Placement::RoundRobin).run_at(3).p_unavailable;
    let rr30 = exp(30, 3, Placement::RoundRobin).run_at(3).p_unavailable;
    assert!(rr10 >= rr30, "RR N=10 ({rr10}) >= RR N=30 ({rr30})");
}

#[test]
fn figure1_star_series() {
    // The paper's '*' notation: with 10,000 users, Random placement gives
    // indistinguishable curves for N=10 and N=30.
    for f in 0..=6 {
        let p10 = exp(10, 3, Placement::Random).run_at(f).p_unavailable;
        let p30 = exp(30, 3, Placement::Random).run_at(f).p_unavailable;
        assert!(
            (p10 - p30).abs() < 0.05,
            "R-n3 curves should coincide at f={f}: {p10} vs {p30}"
        );
    }
}

#[test]
fn figure1_monotone_and_bounded() {
    let curve = exp(10, 5, Placement::RoundRobin).run();
    assert_eq!(curve.len(), 11);
    assert_eq!(curve[0].p_unavailable, 0.0);
    assert_eq!(curve[10].p_unavailable, 1.0);
    for w in curve.windows(2) {
        assert!(w[1].p_unavailable >= w[0].p_unavailable - 0.1);
    }
}
