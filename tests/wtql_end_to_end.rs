//! Integration: WTQL text → parse → plan → parallel execution → result
//! store, across every crate in the workspace.

use windtunnel::prelude::*;
use wt_wtql::{parse, run_query, ExecOptions};

fn base() -> Scenario {
    let mut s = ScenarioBuilder::new("e2e-base")
        .racks(1)
        .nodes_per_rack(10)
        .objects(300)
        .object_gb(4.0)
        .horizon_years(0.25)
        .seed(99)
        .build();
    s.topology.node.ttf = Dist::weibull_mean(0.8, 60.0 * 86_400.0);
    s
}

#[test]
fn full_pipeline_explore_constrain_optimize() {
    let query = parse(
        r#"
        EXPLORE availability, tco_usd_per_year
        SWEEP replication IN [1, 3], repair_parallel IN [1, 8]
        SUBJECT TO availability >= 0.99
        MINIMIZE tco_usd_per_year
        "#,
    )
    .expect("parses");
    let tunnel = WindTunnel::new();
    let out = run_query(&query, &base(), &tunnel, &ExecOptions::default()).expect("runs");

    assert_eq!(out.rows.len(), 4);
    // Simulated rows carry both explored metrics.
    for row in out.rows.iter().filter(|r| !r.pruned) {
        assert!(row.metrics.contains_key("availability"));
        assert!(row.metrics.contains_key("tco_usd_per_year"));
    }
    // rep3 comfortably passes at this failure rate.
    assert!(out.best_row().is_some());
    // Every simulated run was recorded for later §4.4-style exploration.
    assert_eq!(tunnel.store().len(), out.executed);
    // The store's similarity search finds the executed configs.
    tunnel.store().with(|store| {
        let recs = store.by_experiment("availability");
        assert_eq!(recs.len(), out.executed);
    });
}

#[test]
fn pruned_and_exhaustive_agree() {
    let query = parse(
        r#"
        EXPLORE availability
        SWEEP replication IN [1, 2, 3], nic IN ["1g", "10g"]
        SUBJECT TO availability >= 0.999995, objects_lost <= 0
        "#,
    )
    .expect("parses");
    let mut sc = base();
    sc.topology.node.ttf = Dist::exponential_mean(20.0 * 86_400.0);
    sc.repair.detection_delay_s = 7_200.0;

    let exhaustive = run_query(
        &query,
        &sc,
        &WindTunnel::new(),
        &ExecOptions {
            prune: false,
            ..ExecOptions::default()
        },
    )
    .expect("runs");
    let pruned = run_query(&query, &sc, &WindTunnel::new(), &ExecOptions::default()).expect("runs");

    let passing = |o: &wt_wtql::QueryOutcome| {
        let mut v: Vec<String> = o
            .passing()
            .iter()
            .map(|r| format!("{:?}", r.assignment))
            .collect();
        v.sort();
        v
    };
    assert_eq!(passing(&exhaustive), passing(&pruned));
    assert!(pruned.executed <= exhaustive.executed);
}

#[test]
fn threads_do_not_change_results() {
    let query =
        parse(r#"EXPLORE availability SWEEP replication IN [1, 2, 3], placement IN ["R", "RR"]"#)
            .expect("parses");
    let serial =
        run_query(&query, &base(), &WindTunnel::new(), &ExecOptions::default()).expect("runs");
    let parallel = run_query(
        &query,
        &base(),
        &WindTunnel::new(),
        &ExecOptions {
            threads: 4,
            ..ExecOptions::default()
        },
    )
    .expect("runs");
    for (a, b) in serial.rows.iter().zip(&parallel.rows) {
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.metrics, b.metrics);
    }
}
