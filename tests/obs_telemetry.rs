//! Integration: the telemetry layer (`wt-obs`) end to end — sim-derived
//! telemetry is bitwise-identical across worker counts, survives JSONL
//! round trips, and the Chrome trace export agrees with the engine's
//! event count.

use windtunnel::farm::Farm;
use windtunnel::obs::TraceProbe;
use windtunnel::prelude::*;
use wt_store::{ResultStore, SharedStore};

fn scenarios() -> Vec<Scenario> {
    (0..10)
        .map(|i| {
            ScenarioBuilder::new(format!("obs-{i}"))
                .racks(1)
                .nodes_per_rack(6 + (i % 4))
                .objects(120)
                .horizon_years(0.1)
                .seed(500 + i as u64)
                .build()
        })
        .collect()
}

/// Every record's telemetry, wall masked, as JSON — the farm-level
/// pin: probes on, any worker count, same bytes.
fn telemetry_bytes(store: &SharedStore) -> String {
    store
        .snapshot()
        .iter()
        .map(|r| {
            let t = r.telemetry.as_ref().expect("all runs attach telemetry");
            serde_json::to_string(&t.masked()).expect("serializes")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn telemetry_bytes_identical_across_worker_counts() {
    let scenarios = scenarios();
    let sweep = |workers: usize| {
        let store = SharedStore::new();
        let tunnel = WindTunnel::new();
        Farm::new(workers).run_recorded(11, &scenarios, &store, |sc, _ctx, shard| {
            tunnel.run_availability_into(sc, shard);
        });
        telemetry_bytes(&store)
    };

    let gold = sweep(1);
    assert!(!gold.is_empty());
    // Sim-derived fields must be present and meaningful, not all-zero.
    assert!(gold.contains("\"stop_reason\":\"HorizonReached\""));
    for workers in [4, 8] {
        assert_eq!(
            sweep(workers),
            gold,
            "telemetry bytes diverged at {workers} workers"
        );
    }
}

#[test]
fn telemetry_survives_jsonl_round_trip() {
    let store = SharedStore::new();
    let tunnel = WindTunnel::new();
    Farm::new(2).run_recorded(3, &scenarios()[..4], &store, |sc, _ctx, shard| {
        tunnel.run_availability_into(sc, shard);
    });

    let dir = std::env::temp_dir().join(format!("wt_obs_rt_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("telemetry.jsonl");
    store
        .with(|s: &ResultStore| s.save_jsonl(&path))
        .expect("saves");
    let loaded = ResultStore::load_jsonl(&path).expect("loads");
    std::fs::remove_dir_all(&dir).ok();

    let before = store.snapshot();
    let after = loaded.snapshot();
    assert_eq!(before.len(), after.len());
    for (b, a) in before.iter().zip(&after) {
        let bt = b.telemetry.as_ref().expect("saved with telemetry");
        let at = a.telemetry.as_ref().expect("loaded with telemetry");
        // The whole struct round-trips — including the wall-clock side.
        assert_eq!(bt, at, "record {} telemetry changed in flight", b.id);
        assert!(at.events > 0 || at.horizon_s > 0.0);
    }
}

#[test]
fn trace_span_count_matches_engine_events() {
    let scenario = ScenarioBuilder::new("obs-trace")
        .racks(1)
        .nodes_per_rack(8)
        .objects(150)
        .horizon_years(0.2)
        .seed(42)
        .build();
    let tunnel = WindTunnel::new();
    let mut probe = TraceProbe::new();
    let (_, telemetry) =
        tunnel.run_availability_observed_into(&scenario, tunnel.store(), Some(&mut probe));

    assert_eq!(probe.span_count() as u64, telemetry.events);

    // The JSON export carries exactly one "X" span per engine event.
    let mut buf = Vec::new();
    probe.write_chrome_json(&mut buf).expect("writes");
    let json = String::from_utf8(buf).expect("utf8");
    let spans = json.matches("\"ph\":\"X\"").count();
    assert_eq!(spans as u64, telemetry.events);

    // The tee'd SimProbe saw the same stream: label counts partition
    // the total.
    let by_label: u64 = telemetry.events_by_label.values().sum();
    assert_eq!(by_label, telemetry.events);
}
