//! Guided execution equivalence: the guided planner (analytic screening,
//! surrogate ranking, early-stop) must reproduce the exhaustive sweep's
//! verdict table exactly — at any worker count and on either DES queue
//! backend. Guided mode may only change *how much* simulation runs, never
//! *what* the sweep concludes.

use windtunnel::prelude::*;
use wt_wtql::{parse, run_query, ExecOptions, QueryOutcome};

/// The failure-heavy cluster the analytic screens can bite on: ~40-day
/// node lifetimes and a 5-day detection delay give ≈ 68 expected failures
/// over the quarter, so weak replication provably misses tight floors.
fn stress_base(queue: QueueBackend) -> Scenario {
    let mut sc = ScenarioBuilder::new("guided-eq")
        .racks(3)
        .nodes_per_rack(10)
        .objects(300)
        .object_gb(4.0)
        .horizon_years(0.25)
        .seed(42)
        .queue(queue)
        .build();
    sc.topology.node.ttf = Dist::weibull_mean(0.8, 40.0 * 86_400.0);
    sc.repair.detection_delay_s = 5.0 * 86_400.0;
    sc
}

/// Per-point verdict flags, in grid order: (assignment, passes, pruned,
/// screened-or-simulated is deliberately *not* included — provenance may
/// differ, the verdict may not).
fn verdicts(out: &QueryOutcome) -> Vec<(String, bool, bool)> {
    out.rows
        .iter()
        .map(|r| {
            let desc: Vec<String> = r
                .assignment
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            (desc.join(","), r.passes, r.pruned)
        })
        .collect()
}

fn winning_row(out: &QueryOutcome) -> Option<String> {
    out.best_row().map(|r| {
        let desc: Vec<String> = r
            .assignment
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        desc.join(",")
    })
}

fn run(query_text: &str, sc: &Scenario, guided: bool, threads: usize) -> QueryOutcome {
    let query = parse(query_text).expect("parses");
    let tunnel = WindTunnel::new();
    let mut opts = ExecOptions::from_query(&query);
    opts.threads = threads;
    if guided {
        opts.guided = true;
        opts.screen = true;
        opts.rank = true;
        opts.early_stop = true;
        opts.sketch_abort = true;
    }
    run_query(&query, sc, &tunnel, &opts).expect("runs")
}

#[test]
fn guided_matches_exhaustive_across_workers_and_backends() {
    // E4/E6-style sweep: redundancy × repair speed under a tight floor
    // with a cost objective. Pruning off so every point is individually
    // comparable.
    let text = "EXPLORE availability, tco_usd_per_year \
                SWEEP replication IN [2, 3, 5], repair_parallel IN [1, 4] \
                SUBJECT TO availability >= 0.99985 \
                MINIMIZE tco_usd_per_year \
                OPTIONS prune = FALSE";
    for queue in [QueueBackend::Heap, QueueBackend::Calendar] {
        let sc = stress_base(queue);
        let exhaustive = run(text, &sc, false, 1);
        assert_eq!(exhaustive.screened, 0);
        for workers in [1, 4] {
            let guided = run(text, &sc, true, workers);
            assert_eq!(
                verdicts(&exhaustive),
                verdicts(&guided),
                "queue {queue:?}, workers {workers}"
            );
            assert_eq!(winning_row(&exhaustive), winning_row(&guided));
            // The screens actually fired and actually saved simulation.
            assert!(guided.screened >= 2, "queue {queue:?}: {guided:?}");
            assert!(guided.total_sim_events < exhaustive.total_sim_events);
        }
    }
}

#[test]
fn guided_preserves_dominance_pruning() {
    // With pruning on, the guided run must reproduce the exhaustive
    // pruned set too: ranking reorders execution, but dominance edges
    // still gate each point on its dominators' verdicts.
    let text = "EXPLORE availability \
                SWEEP replication IN [2, 3, 5], repair_parallel IN [1, 4] \
                SUBJECT TO availability >= 0.99985";
    let sc = stress_base(QueueBackend::Heap);
    let exhaustive = run(text, &sc, false, 1);
    assert!(
        exhaustive.pruned > 0,
        "fixture should exercise pruning: {exhaustive:?}"
    );
    for workers in [1, 4] {
        let guided = run(text, &sc, true, workers);
        assert_eq!(
            verdicts(&exhaustive),
            verdicts(&guided),
            "workers {workers}"
        );
    }
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Conservatism: whenever the analytic screen resolves a point,
        /// force-simulating that same point yields the same pass/fail
        /// verdict. Screens may stay silent; they may never lie.
        #[test]
        fn screened_verdicts_survive_forced_simulation(
            replication in 2usize..5,
            detect_days in 3u64..7,
            life_days in 30u64..61,
            threshold_idx in 0usize..3,
        ) {
            let threshold = [0.995, 0.9995, 0.99985][threshold_idx];
            let mut sc = ScenarioBuilder::new("screen-conserve")
                .racks(3)
                .nodes_per_rack(10)
                .objects(150)
                .horizon_years(0.25)
                .seed(7)
                .build();
            sc.topology.node.ttf =
                Dist::weibull_mean(0.8, life_days as f64 * 86_400.0);
            sc.repair.detection_delay_s = detect_days as f64 * 86_400.0;

            let text = format!(
                "EXPLORE availability SWEEP replication IN [{replication}] \
                 SUBJECT TO availability >= {threshold}"
            );
            let query = parse(&text).expect("parses");
            let mut opts = ExecOptions::from_query(&query);
            opts.guided = true;
            opts.screen = true;
            let tunnel = WindTunnel::new();
            let guided = run_query(&query, &sc, &tunnel, &opts).expect("runs");
            let row = &guided.rows[0];
            if row.screened {
                // Force the simulation the screen skipped.
                let tunnel = WindTunnel::new();
                let forced =
                    run_query(&query, &sc, &tunnel, &ExecOptions::default()).expect("runs");
                prop_assert_eq!(
                    row.passes,
                    forced.rows[0].passes,
                    "screen said {} but simulation said {} \
                     (replication {}, detect {}d, life {}d, floor {})",
                    row.passes,
                    forced.rows[0].passes,
                    replication,
                    detect_days,
                    life_days,
                    threshold
                );
            }
        }
    }
}
