//! Layout-swap regression oracle: the SoA/arena refactor of the cluster
//! engines must be invisible in every observable byte. Three locks:
//!
//! * `fig1 --smoke` stdout, pinned against a committed fixture at
//!   workers 1/4 × heap/calendar (the fixture was captured on the
//!   pre-refactor `Vec<Vec<_>>` layout).
//! * `e13_chaos --smoke` stdout, same grid — chaos handlers ride the
//!   same hot path and must not drift either.
//! * `RunRecord` JSON bytes for a mixed scenario batch (switch + disk
//!   failures, chaos, perf tenants), wall-clock masked.
//!
//! Regenerate the record fixture with `BLESS_GOLDEN=1` — but only on a
//! commit whose outputs are already known-good; blessing on a drifted
//! tree defeats the lock.

use std::process::Command;
use windtunnel::prelude::*;
use wt_cluster::chaos::{FaultKind, FaultSchedule};
use wt_store::SharedStore;

const GOLDEN_DIR: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden");

fn golden_path(name: &str) -> String {
    format!("{GOLDEN_DIR}/{name}")
}

fn read_golden(name: &str) -> String {
    std::fs::read_to_string(golden_path(name))
        .unwrap_or_else(|e| panic!("missing golden fixture {name}: {e}"))
}

/// Runs `bin --smoke` with the given worker count and backend flag,
/// returning stdout. Stderr (timing lines) is intentionally dropped.
fn smoke_stdout(bin: &str, workers: &str, queue: Option<&str>) -> String {
    let mut cmd = Command::new(bin);
    cmd.args(["--smoke", "--workers", workers]);
    if let Some(q) = queue {
        cmd.args(["--queue", q]);
    }
    let out = cmd.output().unwrap_or_else(|e| panic!("spawn {bin}: {e}"));
    assert!(out.status.success(), "{bin} failed: {:?}", out.status);
    String::from_utf8(out.stdout).expect("smoke stdout is UTF-8")
}

fn assert_smoke_pinned(bin: &str, fixture: &str) {
    let want = read_golden(fixture);
    for workers in ["1", "4"] {
        for queue in [None, Some("heap"), Some("calendar")] {
            let got = smoke_stdout(bin, workers, queue);
            assert_eq!(
                got, want,
                "stdout drifted from {fixture} at workers={workers} queue={queue:?}"
            );
        }
    }
}

#[test]
fn fig1_smoke_stdout_pinned() {
    assert_smoke_pinned(env!("CARGO_BIN_EXE_fig1"), "fig1_smoke.txt");
}

#[test]
fn e13_chaos_smoke_stdout_pinned() {
    assert_smoke_pinned(env!("CARGO_BIN_EXE_e13_chaos"), "e13_chaos_smoke.txt");
}

/// A scenario batch covering every engine feature the layout refactor
/// touches: plain replication, switch outages, disk slots, rack-aware
/// placement, erasure coding, and a chaos schedule.
fn scenarios() -> Vec<Scenario> {
    vec![
        ScenarioBuilder::new("layout-base")
            .racks(2)
            .nodes_per_rack(8)
            .objects(180)
            .object_gb(4.0)
            .horizon_years(0.2)
            .seed(4001)
            .build(),
        ScenarioBuilder::new("layout-switch-disk")
            .racks(3)
            .nodes_per_rack(6)
            .objects(150)
            .object_gb(2.0)
            .switch_failures(true)
            .disk_failures(true)
            .horizon_years(0.2)
            .seed(4002)
            .build(),
        ScenarioBuilder::new("layout-rackaware-ec")
            .racks(4)
            .nodes_per_rack(6)
            .erasure(4, 2)
            .placement(Placement::RackAware { nodes_per_rack: 6 })
            .objects(120)
            .object_gb(8.0)
            .horizon_years(0.2)
            .seed(4003)
            .build(),
        ScenarioBuilder::new("layout-chaos")
            .racks(2)
            .nodes_per_rack(10)
            .objects(160)
            .object_gb(4.0)
            .horizon_years(0.2)
            .seed(4004)
            .faults(
                FaultSchedule::new()
                    .rule(
                        "pdu",
                        900_000.0,
                        FaultKind::PowerDomainLoss {
                            first_rack: 0,
                            racks: 1,
                            restore_s: 50_000.0,
                        },
                    )
                    .rule(
                        "storm",
                        2_000_000.0,
                        FaultKind::GrayStorm {
                            spec: wt_hw::LimpwareSpec::degraded_disk_fixed(0.5, 40.0),
                            center_rack: 1,
                            radius_racks: 0,
                            duration_s: 400_000.0,
                        },
                    ),
            )
            .build(),
    ]
}

/// Serializes every stored record with only the wall clock masked —
/// everything else (results, telemetry counts, queue provenance) is
/// part of the pinned bytes.
fn record_bytes(store: &SharedStore) -> String {
    let snapshot = store.snapshot();
    assert!(!snapshot.is_empty());
    let mut lines: Vec<String> = snapshot
        .iter()
        .map(|r| {
            let mut r = r.clone();
            if let Some(t) = r.telemetry.as_mut() {
                t.mask_wall();
            }
            serde_json::to_string(&r).expect("serializes")
        })
        .collect();
    lines.push(String::new()); // trailing newline
    lines.join("\n")
}

#[test]
fn run_record_bytes_pinned() {
    let tunnel = WindTunnel::new();
    let store = SharedStore::new();
    for mut sc in scenarios() {
        let (_r, _t) = tunnel.run_availability_observed_into(&sc, &store, None);
        sc.tenants = vec![TenantWorkload::oltp("t", 120.0, 5_000)];
        let (_r, _t) = tunnel.run_perf_observed_into(&sc, true, &store, None);
    }
    let got = record_bytes(&store);
    let path = golden_path("runrecords.jsonl");
    if std::env::var_os("BLESS_GOLDEN").is_some() {
        std::fs::write(&path, &got).expect("bless golden");
        return;
    }
    let want = read_golden("runrecords.jsonl");
    assert_eq!(
        got, want,
        "RunRecord bytes drifted from tests/golden/runrecords.jsonl"
    );
}
