//! Integration: partitioned parallel execution end to end. A single run
//! sharded across conservative-lookahead partitions must be invisible in
//! results, the way `queue_backends.rs` pins the queue backends:
//!
//! * **Thread counts** (fixed partitioning) are fully bitwise-invisible:
//!   same `RunRecord` bytes, telemetry and sketches included (only
//!   wall-clock is masked).
//! * **Partition counts** are semantically invisible: identical
//!   `AvailabilityResult`/`PerfResult`, identical event totals and
//!   per-label counts, identical marks and sketch sample counts. Queue-
//!   depth gauges and sketch f64 sums depend on the partitioning by
//!   construction (per-partition queues; f64 summation order), so those
//!   two fields are excluded — see DESIGN.md "Partitioned execution".
//!
//! Also covers satellite coverage for chaos landing on cross-partition
//! targets: a power-domain loss spanning racks owned by different
//! partitions fires identically to the serial path.

use windtunnel::obs::RunTelemetry;
use windtunnel::prelude::*;
use wt_cluster::chaos::ChaosConfig;
use wt_cluster::{FaultKind, FaultSchedule, PartitionedAvailability, PartitionedPerf};
use wt_store::SharedStore;

fn scenario(seed: u64) -> Scenario {
    let mut sc = ScenarioBuilder::new("pe")
        .racks(6)
        .nodes_per_rack(8)
        .objects(300)
        .object_gb(4.0)
        .horizon_years(0.25)
        .seed(seed)
        .build();
    // Short TTF so the horizon holds real failure/repair/mirror traffic.
    sc.topology.node.ttf = wt_dist::Dist::exponential_mean(5.0 * 86_400.0);
    sc.topology.node.repair = wt_dist::Dist::exponential_mean(4.0 * 3_600.0);
    sc
}

/// Serializes every record with wall-clock masked; everything else —
/// telemetry, sketches, marks — must be identical across thread counts.
fn record_bytes(store: &SharedStore) -> String {
    let snapshot = store.snapshot();
    assert!(!snapshot.is_empty());
    snapshot
        .iter()
        .map(|r| {
            let mut r = r.clone();
            r.telemetry
                .as_mut()
                .expect("observed runs attach telemetry")
                .mask_wall();
            serde_json::to_string(&r).expect("serializes")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// The partitioning-invariant view of a telemetry blob: everything except
/// queue-depth gauges (per-partition queues) and sketch byte payloads
/// (f64 merge-order sums); sketch sample counts stay in.
fn invariant_view(t: &RunTelemetry) -> (String, Vec<(String, u64)>) {
    let mut t = t.clone();
    t.mask_wall();
    t.peak_queue_depth = 0;
    t.mean_queue_depth = 0.0;
    let counts = match t.sketches.take() {
        Some(set) => set
            .values
            .iter()
            .map(|(k, s)| (k.clone(), s.count()))
            .collect(),
        None => Vec::new(),
    };
    (serde_json::to_string(&t).expect("serializes"), counts)
}

#[test]
fn availability_records_identical_across_thread_counts() {
    // Fixed partitioning (3 partitions over 6 racks), varying only the
    // worker thread count: the RunRecord bytes — telemetry, sketches,
    // marks, everything but wall-clock — must be identical. Threads = 1
    // is the serial execution of the same partitioned schedule.
    let tunnel = WindTunnel::new();
    let bytes = |threads: usize| {
        let store = SharedStore::new();
        tunnel.run_availability_partitioned_into(&scenario(41), 3, threads, &store);
        record_bytes(&store)
    };
    let serial = bytes(1);
    for threads in [2, 4] {
        assert_eq!(
            bytes(threads),
            serial,
            "records diverged at {threads} threads"
        );
    }
}

#[test]
fn availability_results_invariant_across_partition_counts() {
    let tunnel = WindTunnel::new();
    let run = |partitions: usize| {
        let store = SharedStore::new();
        tunnel.run_availability_partitioned_into(&scenario(43), partitions, 2, &store)
    };
    let (gold, gold_t) = run(1);
    assert!(gold_t.events > 1_000, "run must do real work");
    let (gold_view, gold_counts) = invariant_view(&gold_t);
    for partitions in [2, 4, 6] {
        let (r, t) = run(partitions);
        assert_eq!(r, gold, "result diverged at {partitions} partitions");
        let (view, counts) = invariant_view(&t);
        // The partition/<i> marks legitimately differ (that's what they
        // report); compare views with those stripped.
        let strip = |v: &str| -> String {
            let mut t: RunTelemetry = serde_json::from_str(v).unwrap();
            t.marks.retain(|k, _| !k.starts_with("partition/"));
            serde_json::to_string(&t).unwrap()
        };
        assert_eq!(
            strip(&view),
            strip(&gold_view),
            "telemetry diverged at {partitions} partitions"
        );
        assert_eq!(counts, gold_counts, "sketch counts diverged");
        // Per-partition event marks account for every event.
        let marked: u64 = t
            .marks
            .iter()
            .filter(|(k, _)| k.starts_with("partition/"))
            .map(|(_, v)| v)
            .sum();
        assert_eq!(marked, t.events);
    }
}

#[test]
fn perf_engine_is_partition_and_thread_invisible() {
    let m = PartitionedPerf {
        topology: wt_hw::TopologySpec {
            racks: 4,
            nodes_per_rack: 4,
            node: catalog::node_storage_server(catalog::ssd_sata_1t(), 4, catalog::nic_10g()),
            tor: catalog::switch_tor_48x10g(),
            agg: catalog::switch_agg_32x40g(),
            oversubscription: 4.0,
        },
        tenants: vec![
            TenantWorkload::oltp("shop", 60.0, 2_000),
            TenantWorkload::analytics("scan", 4.0, 200),
        ],
        remote_read_fraction: 0.3,
        queue: wt_des::QueueBackend::Heap,
    };
    let (gold, gold_t) = m.run_observed(71, 240.0, 1, 1);
    assert!(gold_t.events > 1_000, "run must do real work");
    // Thread counts at fixed partitioning: fully bitwise.
    for threads in [2, 4] {
        let (r, t) = m.run_observed(71, 240.0, 2, threads);
        let (r1, t1) = m.run_observed(71, 240.0, 2, 1);
        assert_eq!(r, r1, "perf result diverged at {threads} threads");
        let masked = |mut t: RunTelemetry| {
            t.mask_wall();
            t
        };
        assert_eq!(masked(t), masked(t1));
    }
    // Partition counts: results and invariant telemetry agree with the
    // serial oracle.
    let (gold_view, gold_counts) = invariant_view(&gold_t);
    for partitions in [2, 4] {
        let (r, t) = m.run_observed(71, 240.0, partitions, 2);
        assert_eq!(r, gold, "perf result diverged at {partitions} partitions");
        let (view, counts) = invariant_view(&t);
        let strip = |v: &str| -> String {
            let mut t: RunTelemetry = serde_json::from_str(v).unwrap();
            t.marks.retain(|k, _| !k.starts_with("partition/"));
            serde_json::to_string(&t).unwrap()
        };
        assert_eq!(strip(&view), strip(&gold_view));
        assert_eq!(counts, gold_counts);
    }
}

#[test]
fn cross_partition_power_domain_chaos_matches_serial() {
    // A power-domain loss spanning racks 2..4 at 4 partitions over 6
    // racks: the domain straddles a partition boundary (racks {2} and
    // {3} land in different partitions at both 4 and 6 partitions), so
    // the injection must be routed to each owning partition and fire
    // identically to the serial path — including the repair/mirror wave
    // it triggers.
    let mut m = PartitionedAvailability::example(6, 8, 240);
    m.node_ttf = wt_dist::Dist::exponential_mean(10.0 * 86_400.0);
    m.chaos = Some(ChaosConfig {
        schedule: FaultSchedule::new().rule(
            "dc-brownout",
            86_400.0 * 5.0,
            FaultKind::PowerDomainLoss {
                first_rack: 2,
                racks: 2,
                restore_s: 6.0 * 3_600.0,
            },
        ),
        nodes_per_rack: 8,
    });
    let horizon = 30.0 * 86_400.0;
    let (gold, gold_t) = m.run_observed(91, horizon, 1, 1);
    // The mark fires once per affected rack (the injection is routed to
    // each owning rack), so a 2-rack domain marks twice.
    assert_eq!(
        gold_t.marks.get("inject_power_loss"),
        Some(&2),
        "the chaos rule must actually fire"
    );
    for partitions in [2, 3, 4, 6] {
        for threads in [1, 2] {
            let (r, t) = m.run_observed(91, horizon, partitions, threads);
            assert_eq!(
                r, gold,
                "chaos diverged at {partitions} partitions / {threads} threads"
            );
            assert_eq!(t.events, gold_t.events);
            assert_eq!(t.events_by_label, gold_t.events_by_label);
            assert_eq!(
                t.marks.get("inject_power_loss"),
                Some(&2),
                "injection mark lost at {partitions} partitions"
            );
        }
    }
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Arbitrary small configs: the partitioned availability engine's
        /// result (every field) is identical across partition and thread
        /// counts, on both queue backends.
        #[test]
        fn partitioned_runs_equivalent(
            racks in 1usize..7,
            // The example model places 3 replicas in the home rack when
            // racks == 1, so the rack needs at least 3 nodes.
            per_rack in 3usize..9,
            objects in 50u64..300,
            seed in 0u64..1_000,
            horizon_days in 10u64..60,
            calendar in any::<bool>(),
        ) {
            let mut m = PartitionedAvailability::example(racks, per_rack, objects);
            if calendar {
                m.queue = wt_des::QueueBackend::Calendar;
            }
            m.node_ttf = wt_dist::Dist::exponential_mean(8.0 * 86_400.0);
            let horizon = horizon_days as f64 * 86_400.0;
            let gold = m.run(seed, horizon, 1, 1);
            for (partitions, threads) in [(2, 2), (3, 1), (4, 3)] {
                let r = m.run(seed, horizon, partitions, threads);
                prop_assert_eq!(&r, &gold, "diverged at {} partitions", partitions);
            }
        }
    }
}
