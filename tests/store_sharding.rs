//! Integration: sharded recording is deterministic — the merged store's
//! bytes (record ids, order, contents) are identical for any worker
//! count — and the capacity bound evicts oldest-first while keeping the
//! indexes consistent with a scan.

use windtunnel::farm::Farm;
use windtunnel::prelude::*;
use wt_store::{RecordSink, ResultStore, RunRecord, SharedStore};
use wt_wtql::{parse, run_query, ExecOptions};

/// The merged store as JSONL bytes — the strictest equality we can ask
/// for: ids, order, params, metrics, seeds, sim-side telemetry. Wall
/// clock is the one legitimately nondeterministic field a record
/// carries, so it is masked (`RunTelemetry::mask_wall`) before
/// serializing — everything else must match to the byte.
fn store_bytes(store: &SharedStore) -> String {
    store
        .snapshot()
        .iter()
        .map(|r| {
            let mut r = r.clone();
            if let Some(t) = r.telemetry.as_mut() {
                t.mask_wall();
            }
            serde_json::to_string(&r).expect("serializes")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn sharded_store_bytes_identical_across_worker_counts() {
    // Real availability runs, variable record count per item (replicated
    // runs append one record per replication) — a worker-count-dependent
    // merge would misorder ids here.
    let scenarios: Vec<Scenario> = (0..12)
        .map(|i| {
            ScenarioBuilder::new(format!("shard-det-{i}"))
                .racks(1)
                .nodes_per_rack(6 + (i % 3))
                .objects(100)
                .horizon_years(0.05)
                .seed(100 + i as u64)
                .build()
        })
        .collect();

    let sweep = |workers: usize| {
        let store = SharedStore::new();
        let tunnel = WindTunnel::new();
        Farm::new(workers).run_recorded(7, &scenarios, &store, |sc, ctx, shard| {
            if ctx.index % 3 == 0 {
                tunnel.run_availability_replicated_into(sc, 2, shard);
            } else {
                tunnel.run_availability_into(sc, shard);
            }
        });
        store_bytes(&store)
    };

    let gold = sweep(1);
    assert!(!gold.is_empty());
    for workers in [4, 8] {
        assert_eq!(
            sweep(workers),
            gold,
            "merged store bytes diverged at {workers} workers"
        );
    }
}

#[test]
fn wtql_store_bytes_identical_across_thread_counts() {
    let query = parse(
        r#"EXPLORE availability
           SWEEP replication IN [1, 3], placement IN ["R", "RR"]"#,
    )
    .expect("parses");
    let base = ScenarioBuilder::new("wtql-shard")
        .racks(1)
        .nodes_per_rack(10)
        .objects(150)
        .horizon_years(0.2)
        .seed(9)
        .build();

    let sweep = |threads: usize| {
        let tunnel = WindTunnel::new();
        let opts = ExecOptions {
            threads,
            ..ExecOptions::default()
        };
        run_query(&query, &base, &tunnel, &opts).expect("runs");
        store_bytes(tunnel.store())
    };

    let gold = sweep(1);
    for threads in [4, 8] {
        assert_eq!(
            sweep(threads),
            gold,
            "wtql-recorded store diverged at {threads} threads"
        );
    }
}

#[test]
fn bounded_store_evicts_oldest_under_sharded_merge() {
    let store = SharedStore::with_capacity(10);
    let items: Vec<u64> = (0..25).collect();
    Farm::new(4).run_recorded(3, &items, &store, |&x, ctx, shard| {
        shard.record(
            RunRecord::new(if x % 2 == 0 { "even" } else { "odd" }, ctx.seed)
                .param("x", x as f64)
                .metric("m", x as f64),
        );
    });
    store.with(|s: &ResultStore| {
        assert_eq!(s.len(), 10);
        assert_eq!(s.evicted(), 15);
        // The newest 10 survive, in id order (ids == item index here,
        // because the merge is deterministic).
        let ids: Vec<u64> = s.records().map(|r| r.id).collect();
        assert_eq!(ids, (15..25).collect::<Vec<_>>());
        for id in 0..15 {
            assert!(s.get(id).is_none(), "id {id} should be evicted");
        }
        // Index-backed lookups agree exactly with a predicate scan.
        for exp in ["even", "odd"] {
            let indexed: Vec<u64> = s.by_experiment(exp).iter().map(|r| r.id).collect();
            let scanned: Vec<u64> = s
                .query(|r| r.experiment == exp)
                .iter()
                .map(|r| r.id)
                .collect();
            assert_eq!(indexed, scanned, "{exp} index diverged from scan");
        }
    });
}
