//! Integration: the pluggable future-event list end to end. Both queue
//! backends (`heap`, `calendar`) must drive the engines to bitwise-
//! identical results — same event order, same RNG draws, same
//! `RunRecord` bytes — with the backend visible only as telemetry
//! provenance. Covers deterministic availability + perf runs through
//! `WindTunnel`, a proptest over small engine configs, and a
//! churn-heavy long run as the seq-headroom smoke.

use windtunnel::prelude::*;
use wt_store::SharedStore;

fn scenarios() -> Vec<Scenario> {
    (0..6)
        .map(|i| {
            ScenarioBuilder::new(format!("qb-{i}"))
                .racks(1 + i % 3)
                .nodes_per_rack(6 + i % 5)
                .objects(150)
                .object_gb(4.0)
                .switch_failures(i % 2 == 0)
                .disk_failures(i % 2 == 1)
                .horizon_years(0.15)
                .seed(900 + i as u64)
                .build()
        })
        .collect()
}

/// Serializes every record with wall-clock masked and the queue
/// provenance *asserted then stripped* — what's left must be identical
/// across backends.
fn record_bytes(store: &SharedStore, expect_queue: &str) -> String {
    let snapshot = store.snapshot();
    assert!(!snapshot.is_empty());
    snapshot
        .iter()
        .map(|r| {
            let mut r = r.clone();
            let t = r
                .telemetry
                .as_mut()
                .expect("observed runs attach telemetry");
            assert_eq!(
                t.queue.as_deref(),
                Some(expect_queue),
                "telemetry must record the backend the run used"
            );
            t.mask_wall();
            t.queue = None;
            serde_json::to_string(&r).expect("serializes")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn run_all(queue: QueueBackend) -> (String, String) {
    let tunnel = WindTunnel::new();
    let avail_store = SharedStore::new();
    let perf_store = SharedStore::new();
    for mut sc in scenarios() {
        sc.queue = Some(queue);
        let (_r, _t) = tunnel.run_availability_observed_into(&sc, &avail_store, None);
        sc.tenants = vec![TenantWorkload::oltp("t", 120.0, 5_000)];
        let (_r, _t) = tunnel.run_perf_observed_into(&sc, true, &perf_store, None);
    }
    (
        record_bytes(&avail_store, queue.as_str()),
        record_bytes(&perf_store, queue.as_str()),
    )
}

#[test]
fn run_records_identical_across_backends() {
    let (avail_heap, perf_heap) = run_all(QueueBackend::Heap);
    let (avail_cal, perf_cal) = run_all(QueueBackend::Calendar);
    assert_eq!(
        avail_heap, avail_cal,
        "availability RunRecords diverged between queue backends"
    );
    assert_eq!(
        perf_heap, perf_cal,
        "perf RunRecords diverged between queue backends"
    );
}

/// The seq-headroom smoke: a cluster under failure pressure high enough
/// to push the event count past several hundred thousand — far past any
/// bucket-resize and width-re-estimation thresholds — still bit-equal.
#[test]
fn long_churn_run_stays_equivalent() {
    let mk = |queue| {
        let mut sc = ScenarioBuilder::new("qb-long")
            .racks(4)
            .nodes_per_rack(12)
            .objects(200)
            .object_gb(2.0)
            .disk_failures(true)
            .horizon_years(12.0)
            .seed(77)
            .queue(queue)
            .build();
        // Weibull infant mortality with a short mean: constant churn.
        sc.topology.node.ttf = Dist::weibull_mean(0.7, 10.0 * 86_400.0);
        sc
    };
    let tunnel = WindTunnel::new();
    let heap = mk(QueueBackend::Heap);
    let calendar = mk(QueueBackend::Calendar);
    let (r_heap, t_heap) = tunnel.run_availability_observed_into(&heap, tunnel.store(), None);
    let (r_cal, t_cal) = tunnel.run_availability_observed_into(&calendar, tunnel.store(), None);
    assert!(
        t_heap.events > 300_000,
        "smoke must be churn-heavy, got {} events",
        t_heap.events
    );
    assert_eq!(r_heap, r_cal);
    assert_eq!(t_heap.events, t_cal.events);
    assert_eq!(t_heap.events_by_label, t_cal.events_by_label);
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Full engine runs on arbitrary small configs: the availability
        /// engine's result (every field, availability through event
        /// count) is identical on both backends.
        #[test]
        fn engine_runs_equivalent(
            racks in 1usize..3,
            per_rack in 2usize..9,
            replication in 2usize..4,
            objects in 50u64..300,
            seed in 0u64..1_000,
            horizon_cy in 5u64..40, // centi-years: 0.05..0.40
        ) {
            let mk = |queue| {
                ScenarioBuilder::new("qb-prop")
                    .racks(racks)
                    .nodes_per_rack(per_rack)
                    .replication(replication.min(racks * per_rack))
                    .objects(objects)
                    .horizon_years(horizon_cy as f64 / 100.0)
                    .seed(seed)
                    .queue(queue)
                    .build()
            };
            let heap = WindTunnel::availability_model(&mk(QueueBackend::Heap));
            let calendar = WindTunnel::availability_model(&mk(QueueBackend::Calendar));
            let horizon = wt_des::SimDuration::from_years(horizon_cy as f64 / 100.0);
            let r_heap = heap.run(seed, horizon);
            let r_cal = calendar.run(seed, horizon);
            prop_assert_eq!(r_heap, r_cal);
        }
    }
}
