//! Integration: scenario serialization and the §4.4 result-store loop —
//! run, persist, reload, similarity-search.

use windtunnel::prelude::*;
use wt_store::{ParamValue, ResultStore};

#[test]
fn scenario_json_roundtrip_preserves_semantics() {
    let scenario = ScenarioBuilder::new("roundtrip")
        .racks(2)
        .nodes_per_rack(8)
        .disk(catalog::ssd_nvme_2t())
        .erasure(6, 3)
        .placement(Placement::Copyset { scatter_width: 4 })
        .repair(RepairPolicy::parallel(8))
        .objects(100)
        .seed(5)
        .build();
    let json = serde_json::to_string_pretty(&scenario).expect("serializes");
    let back: Scenario = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(back.redundancy, scenario.redundancy);
    assert_eq!(back.placement, scenario.placement);
    assert_eq!(back.topology.node.disks[0].name, "ssd-nvme-2t");

    // Same scenario, same seed → byte-identical simulation results.
    let tunnel = WindTunnel::new();
    let a = tunnel.run_availability(&scenario);
    let b = tunnel.run_availability(&back);
    assert_eq!(a, b, "a deserialized scenario must replay identically");
}

#[test]
fn store_persists_and_answers_similarity_queries() {
    let tunnel = WindTunnel::new();
    for racks in [1usize, 4, 10] {
        let sc = ScenarioBuilder::new(format!("racks{racks}"))
            .racks(racks)
            .nodes_per_rack(10)
            .objects(100)
            .horizon_years(0.1)
            .seed(3)
            .build();
        tunnel.run_availability(&sc);
    }
    assert_eq!(tunnel.store().len(), 3);

    // Persist and reload.
    let dir = std::env::temp_dir().join("windtunnel-integration");
    std::fs::create_dir_all(&dir).expect("tempdir");
    let path = dir.join("runs.jsonl");
    let snapshot = tunnel.store().snapshot();
    let mut disk_store = ResultStore::new();
    for mut rec in snapshot {
        rec.id = 0; // let the store reassign
        disk_store.append(rec);
    }
    disk_store.save_jsonl(&path).expect("saves");
    let loaded = ResultStore::load_jsonl(&path).expect("loads");
    assert_eq!(loaded.len(), 3);

    // "Have I explored a configuration similar to a 3-rack build?" —
    // the numeric racks axis ranks 4 closest, then 1, then 10.
    let mut target = loaded
        .records()
        .next()
        .expect("records loaded")
        .params
        .clone();
    // The scenario name is unique per record; drop it so the comparison is
    // about configuration, not labels.
    target.remove("scenario");
    target.insert("racks".to_string(), ParamValue::Num(3.0));
    target.insert("nodes".to_string(), ParamValue::Num(30.0));
    let similar = loaded.find_similar(&target, 3);
    let rack_order: Vec<f64> = similar
        .iter()
        .map(|(r, _)| r.params["racks"].as_num().expect("numeric"))
        .collect();
    assert_eq!(rack_order, vec![4.0, 1.0, 10.0], "similarity ranking");

    std::fs::remove_file(&path).ok();
}

#[test]
fn best_by_finds_cheapest_meeting_availability() {
    let tunnel = WindTunnel::new();
    for (n, racks) in [(3usize, 1usize), (3, 2), (5, 1)] {
        let sc = ScenarioBuilder::new(format!("rep{n}x{racks}"))
            .racks(racks)
            .nodes_per_rack(10)
            .replication(n)
            .objects(100)
            .horizon_years(0.1)
            .seed(4)
            .build();
        tunnel.run_availability(&sc);
    }
    tunnel.store().with(|store| {
        let cheapest = store.best_by("tco_usd_per_year", true).expect("records");
        assert_eq!(cheapest.params["racks"], ParamValue::Num(1.0));
    });
}
