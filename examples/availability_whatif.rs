//! The paper's §1 worked example as library code: is 5-way replication
//! worth it, or does 4-way plus a better repair path meet the same SLA
//! for 20% less storage?
//!
//! ```sh
//! cargo run --release -p wt-bench --example availability_whatif
//! ```

use windtunnel::prelude::*;

fn scenario(
    name: &str,
    replication: usize,
    nic: windtunnel::hw::NicSpec,
    repair: RepairPolicy,
) -> Scenario {
    let mut s = ScenarioBuilder::new(name)
        .racks(3)
        .nodes_per_rack(10)
        .nic(nic)
        .replication(replication)
        .repair(repair)
        .objects(1_000)
        .object_gb(16.0)
        .horizon_years(0.5)
        .seed(7)
        .build();
    // Stress the repair path: failures every ~40 machine-days.
    s.topology.node.ttf = Dist::weibull_mean(0.8, 40.0 * 86_400.0);
    s
}

fn main() {
    let tunnel = WindTunnel::new();
    let sla = SlaSet::new().availability(0.9995).durability(0.0);

    let arms = vec![
        scenario(
            "rep5-1g-serial",
            5,
            catalog::nic_1g(),
            RepairPolicy::serial(),
        ),
        scenario(
            "rep4-1g-serial",
            4,
            catalog::nic_1g(),
            RepairPolicy::serial(),
        ),
        scenario(
            "rep4-10g-serial",
            4,
            catalog::nic_10g(),
            RepairPolicy::serial(),
        ),
        scenario(
            "rep4-10g-par16",
            4,
            catalog::nic_10g(),
            RepairPolicy::parallel(16),
        ),
    ];

    println!(
        "{:<18} {:>12} {:>8} {:>12} {:>8}",
        "design", "availability", "nines", "TCO $/yr", "SLA"
    );
    for scenario in &arms {
        let a = tunnel.assess(scenario, &sla);
        let avail = a.availability.as_ref().expect("availability ran");
        println!(
            "{:<18} {:>12.6} {:>8.2} {:>12.0} {:>8}",
            a.scenario,
            avail.availability,
            avail.nines,
            a.tco_usd_per_year,
            if a.passes() { "met" } else { "MISSED" }
        );
    }
    println!();
    println!(
        "takeaway: the cheaper 4-way design misses the SLA with the stock repair\n\
         path but meets it once the repair network or parallelism improves —\n\
         the §1 hardware/software interdependency, measured instead of guessed."
    );
}
