//! Multi-tenant performance study (paper §3, performance SLAs): what does
//! co-locating an analytics tenant do to an OLTP tenant's latency SLA,
//! and does moving to NVMe buy it back?
//!
//! ```sh
//! cargo run --release -p wt-bench --example multitenant_perf
//! ```

use windtunnel::cluster::PerfModel;
use windtunnel::prelude::*;
use windtunnel::WindTunnel;

fn perf(disk: windtunnel::hw::DiskSpec, tenants: Vec<TenantWorkload>) -> PerfModel {
    // 40G network so interference lands on the *disks*: the axis the
    // disk-upgrade what-if actually moves.
    let scenario = ScenarioBuilder::new("mt")
        .racks(2)
        .nodes_per_rack(5)
        .disk(disk)
        .disks_per_node(2)
        .nic(catalog::nic_40g())
        .horizon_years(1.0)
        .build();
    let mut model = WindTunnel::perf_model(
        &Scenario {
            tenants,
            ..scenario
        },
        false,
    );
    model.horizon_s = 180.0;
    model
}

fn main() {
    let oltp = || TenantWorkload::oltp("shop", 300.0, 100_000);
    let olap = || TenantWorkload::analytics("reports", 30.0, 1_000);

    let arms: Vec<(&str, PerfModel)> = vec![
        (
            "SATA-SSD, shop alone",
            perf(catalog::ssd_sata_1t(), vec![oltp()]),
        ),
        (
            "SATA-SSD, shop+reports",
            perf(catalog::ssd_sata_1t(), vec![oltp(), olap()]),
        ),
        (
            "NVMe,     shop+reports",
            perf(catalog::ssd_nvme_2t(), vec![oltp(), olap()]),
        ),
    ];

    println!(
        "{:<24} {:>10} {:>10} {:>10} {:>12}",
        "arm", "p50", "p95", "p99", "p95 SLA 50ms"
    );
    for (name, model) in arms {
        let r = model.run(3);
        let shop = r.tenant("shop").expect("shop runs");
        println!(
            "{:<24} {:>9.2}ms {:>9.2}ms {:>9.2}ms {:>12}",
            name,
            shop.p50_s * 1e3,
            shop.p95_s * 1e3,
            shop.p99_s * 1e3,
            match shop.sla_met {
                Some(true) => "met",
                Some(false) => "VIOLATED",
                None => "-",
            }
        );
    }
    println!();
    println!(
        "takeaway: workload interactions are a first-class design axis — the\n\
         same OLTP tenant passes or misses its SLA depending on who shares\n\
         the hardware and what that hardware is."
    );
}
