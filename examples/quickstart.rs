//! Quickstart: build a data center scenario, run it through the wind
//! tunnel, and check it against an SLA set.
//!
//! ```sh
//! cargo run --release -p wt-bench --example quickstart
//! ```

use windtunnel::prelude::*;

fn main() {
    // A 3-rack, 30-node cluster of HDD storage servers on a 10G network,
    // storing 5,000 one-GB customer objects with 3-way replication.
    let scenario = ScenarioBuilder::new("starter-dc")
        .racks(3)
        .nodes_per_rack(10)
        .disk(catalog::hdd_7200_4t())
        .disks_per_node(12)
        .nic(catalog::nic_10g())
        .replication(3)
        .placement(Placement::Random)
        .repair(RepairPolicy::parallel(8))
        .objects(5_000)
        .object_gb(1.0)
        .horizon_years(1.0)
        .seed(42)
        .build();

    // The SLAs the provider sold.
    let slas = SlaSet::new().availability(0.9999).durability(0.0);

    // Run exactly the simulations those SLAs need.
    let tunnel = WindTunnel::new();
    let assessment = tunnel.assess(&scenario, &slas);

    let avail = assessment.availability.as_ref().expect("availability ran");
    println!("scenario            : {}", assessment.scenario);
    println!(
        "simulated horizon   : {:.1} days",
        avail.horizon_s / 86_400.0
    );
    println!("node failures       : {}", avail.node_failures);
    println!("rebuilds completed  : {}", avail.rebuilds_completed);
    println!(
        "availability        : {:.6} ({:.1} nines)",
        avail.availability, avail.nines
    );
    println!("objects lost        : {}", avail.objects_lost);
    println!(
        "hardware TCO        : ${:.0}/year",
        assessment.tco_usd_per_year
    );
    println!();
    if assessment.passes() {
        println!("verdict: design meets all SLAs");
    } else {
        println!("verdict: SLA violations:");
        for v in &assessment.violations {
            println!("  - {v}");
        }
    }
    println!(
        "(runs recorded in the result store: {})",
        tunnel.store().len()
    );
}
