//! Querying the wind tunnel declaratively (paper §4.1): express the
//! design question in WTQL, let the optimizer order and prune the runs.
//!
//! ```sh
//! cargo run --release -p wt-bench --example declarative_query
//! ```

use windtunnel::prelude::*;
use wt_wtql::{parse, run_query, ExecOptions};

fn main() {
    let query_text = r#"
        -- Which replication factor and network meet four nines at the
        -- lowest yearly cost?
        EXPLORE availability, tco_usd_per_year
        SWEEP replication IN [2, 3, 5],
              nic IN ["1g", "10g"],
              repair_parallel IN [1, 16]
        SUBJECT TO availability >= 0.9999, objects_lost <= 0
        MINIMIZE tco_usd_per_year
    "#;
    println!("WTQL query:{query_text}");

    let mut base = ScenarioBuilder::new("whatif-base")
        .racks(3)
        .nodes_per_rack(10)
        .objects(1_000)
        .object_gb(16.0)
        .horizon_years(0.25)
        .seed(11)
        .build();
    base.topology.node.ttf = Dist::weibull_mean(0.8, 40.0 * 86_400.0);

    let query = parse(query_text).expect("valid WTQL");
    let tunnel = WindTunnel::new();
    let outcome = run_query(&query, &base, &tunnel, &ExecOptions::default()).expect("query runs");

    println!(
        "grid: {} configs | executed: {} | pruned by dominance: {}",
        outcome.rows.len(),
        outcome.executed,
        outcome.pruned
    );
    println!();
    for row in &outcome.rows {
        let cfg: Vec<String> = row
            .assignment
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        let avail = row
            .metrics
            .get("availability")
            .map(|a| format!("{a:.6}"))
            .unwrap_or_else(|| "(pruned)".into());
        println!(
            "  {:<55} availability={:<10} {}",
            cfg.join(", "),
            avail,
            if row.pruned {
                "pruned"
            } else if row.passes {
                "PASS"
            } else {
                "fail"
            }
        );
    }
    println!();
    match outcome.best_row() {
        Some(best) => println!(
            "answer: {} at ${:.0}/yr",
            best.assignment
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join(", "),
            best.metrics["tco_usd_per_year"]
        ),
        None => println!("answer: nothing on this grid meets the SLA"),
    }
}
