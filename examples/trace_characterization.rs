//! Workload characterization (paper §3): record a request trace, measure
//! its key characteristics, synthesize a matching model, and verify the
//! synthetic tenant reproduces the original's simulated performance.
//!
//! ```sh
//! cargo run --release -p wt-bench --example trace_characterization
//! ```

use windtunnel::cluster::PerfModel;
use windtunnel::prelude::*;
use windtunnel::workload::{OpenLoop, Trace};
use windtunnel::WindTunnel;

fn p95_of(tenant: TenantWorkload) -> f64 {
    let scenario = ScenarioBuilder::new("char")
        .racks(1)
        .nodes_per_rack(10)
        .disk(catalog::ssd_sata_1t())
        .disks_per_node(4)
        .build();
    let mut model: PerfModel = WindTunnel::perf_model(
        &Scenario {
            tenants: vec![tenant],
            ..scenario
        },
        false,
    );
    model.horizon_s = 120.0;
    model.run(17).tenants[0].p95_s
}

fn main() {
    // The "production" workload we only get to observe through its trace.
    let mut production = TenantWorkload::oltp("prod", 350.0, 100_000);
    production.arrivals = OpenLoop::bursty(350.0, 4.0);

    let trace = Trace::record(&production, 300.0, 7);
    println!(
        "recorded {} requests over {:.0}s",
        trace.len(),
        trace.duration_s()
    );

    let c = trace.characterize();
    println!();
    println!("characterization:");
    println!("  rate            : {:.1} req/s", c.rate_rps);
    println!(
        "  reads/writes    : {:.1}% / {:.1}%",
        c.read_fraction * 100.0,
        c.write_fraction * 100.0
    );
    println!("  mean payload    : {:.0} B", c.mean_bytes);
    println!(
        "  interarrivals   : best fit = {}, Poisson-like = {}",
        c.interarrival_family, c.poisson_like
    );
    println!("  hot-1%-key share: {:.1}%", c.hot_key_share * 100.0);

    // Synthesize a model tenant from the measurements alone.
    let synthetic = c.to_workload("synthetic", 100_000, 1024);

    // Does the synthetic workload behave like the original in the tunnel?
    let p95_prod = p95_of(production);
    let p95_synth = p95_of(synthetic);
    println!();
    println!(
        "simulated p95, production trace model : {:.3} ms",
        p95_prod * 1e3
    );
    println!(
        "simulated p95, synthesized model      : {:.3} ms",
        p95_synth * 1e3
    );
    println!(
        "p95 agreement: {:.0}%. The synthesis matches rate, mix, skew and the\n\
         first two interarrival moments (SCV {:.1}); residual gap comes from\n\
         burst *shape* beyond two moments — visible here, and exactly the kind\n\
         of model-fidelity question the paper says the wind tunnel should be\n\
         used to investigate ('how much detail the models must capture').",
        100.0 * (1.0 - (p95_prod - p95_synth).abs() / p95_prod.max(p95_synth)),
        c.interarrival_scv
    );
}
